// Ablation: the paper's central design choice (§4.2) — does replacing the
// evolving resolution layers with automatically computed summaries pay off
// against monolithic whole-program symbolic execution?
//
// Both modes must return the same verdict (they do; asserted here); the
// comparison is exploration cost. Summaries shine as zones grow: the
// engine's resolution logic is explored once per module instead of once per
// calling context.
#include <cstdio>

#include "src/dnsv/pipeline.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

int RunAblation() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Ablation: monolithic vs summarization-based verification (golden engine)\n\n");
  std::printf("%-24s %8s | %10s %10s %10s | %10s %10s %10s | %s\n", "zone", "records",
              "mono (s)", "paths", "checks", "summ (s)", "paths", "checks", "verdicts");

  struct Case {
    std::string name;
    ZoneConfig zone;
  };
  std::vector<Case> cases;
  cases.push_back({"tiny (A only)", ParseZoneText(R"(
$ORIGIN a.test.
@   SOA ns 1
@   NS  ns.a.test.
ns  A   192.0.2.1
www A   192.0.2.2
)").value()});
  cases.push_back({"wildcard", ParseZoneText(R"(
$ORIGIN b.test.
@   SOA ns 1
@   NS  ns.b.test.
ns  A   192.0.2.1
www A   192.0.2.2
*   TXT 7
)").value()});
  cases.push_back({"wildcard+delegation", ParseZoneText(R"(
$ORIGIN c.test.
@      SOA ns 1
@      NS  ns.c.test.
ns     A   192.0.2.1
www    A   192.0.2.2
*      TXT 7
sub    NS  ns.sub.c.test.
ns.sub A   192.0.2.9
)").value()});
  cases.push_back({"generated (seed 11)", GenerateZone(11, {.max_names = 4, .max_depth = 2})});

  VerifyContext context;  // the golden engine compiles once for all runs below
  for (const Case& test_case : cases) {
    VerificationReport mono;
    VerificationReport summ;
    {
      VerifyOptions options;
      options.use_summaries = false;
      mono = RunVerifyPipeline(&context, EngineVersion::kGolden, test_case.zone, options);
    }
    {
      VerifyOptions options;
      options.use_summaries = true;
      summ = RunVerifyPipeline(&context, EngineVersion::kGolden, test_case.zone, options);
    }
    const char* agreement = mono.verified == summ.verified ? "agree" : "DISAGREE";
    std::printf("%-24s %8zu | %10.3f %10lld %10lld | %10.3f %10lld %10lld | %s\n",
                test_case.name.c_str(), test_case.zone.records.size(), mono.total_seconds,
                static_cast<long long>(mono.engine_paths),
                static_cast<long long>(mono.solver_checks), summ.total_seconds,
                static_cast<long long>(summ.engine_paths),
                static_cast<long long>(summ.solver_checks), agreement);
  }
  std::printf(
      "\nfinding: both modes agree on every verdict and explore the same path set.\n"
      "At this zone scale summarization does not make end-to-end checking faster —\n"
      "each summary entry must be feasibility-checked at the call site, which costs\n"
      "about what inlining the module costs when it has a single calling context.\n"
      "The wins the paper leans on are orthogonal to wall-clock: per-layer\n"
      "attribution (Fig. 12), reuse of per-node summaries across engine paths, and\n"
      "not having to write manual specs for the evolving layers (Table 3).\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunAblation(); }

// Table 3 reproduction: cost of verifying one version of the DNS
// authoritative engine and porting the verification to a newer version,
// measured in lines of code per artifact category.
//
// Artifact mapping (documented in EXPERIMENTS.md):
//   implementation           = MiniGo engine sources (types + library + resolve)
//   dependency specification = abstract specs of stable layers (compareAbs,
//                              Fig. 10) + the spec's filtering helpers
//   interface configuration  = the per-function summarization interfaces
//   top-level specification  = rrlookup + its answer composition
//   safety property          = "no feasible path reaches a panic block" (1 line)
#include <cstdio>
#include <set>

#include "src/dnsv/verifier.h"
#include "src/engine/sources/sources.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Non-blank, non-comment lines.
int CountLoc(const std::string& source) {
  int count = 0;
  for (const std::string& raw : SplitString(source, '\n')) {
    std::string_view line = TrimWhitespace(raw);
    if (!line.empty() && !StartsWith(line, "//")) {
      ++count;
    }
  }
  return count;
}

// Symmetric line-set difference (churn) between two sources.
int CountChangedLines(const std::string& before, const std::string& after) {
  auto lines = [](const std::string& source) {
    std::multiset<std::string> out;
    for (const std::string& raw : SplitString(source, '\n')) {
      std::string_view line = TrimWhitespace(raw);
      if (!line.empty() && !StartsWith(line, "//")) {
        out.insert(std::string(line));
      }
    }
    return out;
  };
  std::multiset<std::string> a = lines(before);
  std::multiset<std::string> b = lines(after);
  int changed = 0;
  for (const std::string& line : b) {
    auto it = a.find(line);
    if (it != a.end()) {
      a.erase(it);
    } else {
      ++changed;  // added or modified
    }
  }
  changed += static_cast<int>(a.size());  // removed
  return changed;
}

std::string ImplementationSource(EngineVersion version) {
  std::string source;
  for (const auto& [name, text] : EngineSources(version)) {
    if (name != "rrlookup.mg" && name != "features.mg") {
      source += text;
    }
  }
  return source;
}

// The spec file splits into dependency helpers vs the top-level function.
void SplitSpec(int* dependency_loc, int* top_loc) {
  std::string spec(kSpecRrlookupMg);
  size_t top_begin = spec.find("// Positive resolution at an existing owner name");
  *dependency_loc = CountLoc(spec.substr(0, top_begin));
  *top_loc = CountLoc(spec.substr(top_begin));
}

int InterfaceConfigLoc() {
  // One line per configured parameter plus one per function, the same
  // granularity the paper's interface configs use.
  int lines = 0;
  for (const FunctionInterface& interface_config : ResolutionLayerInterfaces()) {
    lines += 1 + static_cast<int>(interface_config.params.size());
  }
  return lines;
}

int RunTable3() {
  std::printf("Table 3: cost of verifying one version and porting to the next (LoC)\n\n");

  int dependency_spec_base = CountLoc(kEngineCompareRawMg);  // compareAbs etc.
  int dependency_helpers = 0;
  int top_level = 0;
  SplitSpec(&dependency_helpers, &top_level);

  std::printf("%-28s %10s %22s\n", "artifact", "v2.0", "changes v2.0 -> v3.0");
  std::printf("%-28s %10d %22d\n", "implementation",
              CountLoc(ImplementationSource(EngineVersion::kV2)),
              CountChangedLines(ImplementationSource(EngineVersion::kV2),
                                ImplementationSource(EngineVersion::kV3)));
  std::printf("%-28s %10d %22d\n", "dependency specification",
              dependency_spec_base + dependency_helpers, 0);
  std::printf("%-28s %10d %22d\n", "interface configuration", InterfaceConfigLoc(), 0);
  std::printf("%-28s %10d %22d\n", "top-level specification", top_level,
              CountChangedLines(kSpecFeatureGlueOn, kSpecFeatureGlueOn));
  std::printf("%-28s %10d %22d\n", "safety property", 1, 0);

  std::printf("\nPer-version implementation size and churn:\n");
  std::printf("%-10s %16s %24s\n", "version", "implementation", "churn vs previous");
  EngineVersion previous = EngineVersion::kV1;
  bool first = true;
  for (EngineVersion version : AllEngineVersions()) {
    int churn = first ? 0
                      : CountChangedLines(ImplementationSource(previous),
                                          ImplementationSource(version));
    std::printf("%-10s %16d %24d\n", EngineVersionName(version),
                CountLoc(ImplementationSource(version)), churn);
    previous = version;
    first = false;
  }

  std::printf("\npaper expectations: implementation O(2000) with O(200) churn,\n");
  std::printf("dependency specs O(100) with O(10) churn, interface config O(50)\n");
  std::printf("with O(20) churn, top-level spec O(200) with O(10) churn.\n");
  std::printf("Our engine is a faithful but smaller reproduction; the *ratios*\n");
  std::printf("between the categories are the reproduced result.\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunTable3(); }

// UDP throughput of the serving shell (docs/SERVER.md): queries/sec against
// a loopback DnsServer across four axes — 1 worker vs N workers, the interp
// vs AOT-compiled execution backend (docs/BACKEND.md), the response packet
// cache on vs off (docs/SERVER.md) under a Zipf(1.0) query mix, and EDNS
// off vs a 1232/4096 advertised payload (RFC 6891). Not a paper figure —
// the numbers demonstrate that SO_REUSEPORT sharding actually scales the
// verified engine, that compiling the verified AbsIR buys the serving path
// a real single-worker speedup over interpreting it, that the packet cache
// converts a skewed query distribution into hash-lookup latencies without
// changing a byte of the answers, and that OPT parse/echo plus the
// EDNS-aware cache key cost roughly nothing.
//
// Besides the human-readable table, the harness writes BENCH_server.json
// (array of {backend, workers, workload, cache, edns, clients, warmup,
// seconds, queries, qps, p50_us, p99_us, cache_hits, cache_misses,
// hit_rate}) into the working directory for the CI gate.
//
//   $ bench/server_throughput                        # ~2s per configuration
//   $ bench/server_throughput --smoke                # ~0.3s per configuration (CI)
//   $ bench/server_throughput --seconds=5 --warmup=1 # explicit durations
//   $ bench/server_throughput --trials=5             # best of 5 interleaved trials
//
// Trials run round-robin across configurations (trial 1 of every config,
// then trial 2, ...) and each config reports its best trial. Interleaving
// matters on noisy hosts: a machine-wide slowdown (VM throttling, a
// background build) then taxes every configuration instead of whichever
// happened to run last, and best-of-N discards the taxed trials — external
// interference only ever makes a run slower, never faster.
//
// The Zipf configurations double as a transparency gate: after the timed
// window every distinct query is served twice back to back and the two
// answers must be byte-identical — with the cache on, the second answer is a
// splice from the cached entry, so any divergence is a cache bug. The run
// (smoke included) exits non-zero if a cache-on configuration records zero
// hits or any spot check mismatches.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

enum class Workload { kPingPong, kZipf };

const char* WorkloadName(Workload workload) {
  return workload == Workload::kPingPong ? "pingpong" : "zipf";
}

struct BenchConfig {
  BackendKind backend = BackendKind::kInterp;
  int workers = 0;
  Workload workload = Workload::kPingPong;
  size_t cache_entries = 0;
  // 0 = plain queries; otherwise every query carries an OPT advertising this
  // payload, and the responses grow an 11-byte OPT echo.
  uint16_t edns_payload = 0;
};

std::string EdnsName(uint16_t edns_payload) {
  return edns_payload == 0 ? "off" : std::to_string(edns_payload);
}

struct BenchResult {
  BenchConfig config;
  int clients = 0;
  double warmup = 0;
  double seconds = 0;
  uint64_t queries = 0;
  double qps = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double hit_rate = 0;
  int spot_mismatches = 0;
};

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// The Zipf vocabulary: 256 names under the kitchen-sink zone's *.dyn
// wildcard, so every query resolves to the same NOERROR answer shape and the
// cache axis is isolated from any rcode mix.
constexpr int kZipfNames = 256;

std::vector<std::vector<uint8_t>> BuildZipfRequests(uint16_t edns_payload) {
  std::vector<std::vector<uint8_t>> requests;
  requests.reserve(kZipfNames);
  for (int i = 0; i < kZipfNames; ++i) {
    WireQuery query;
    query.id = 0x5a50;
    query.qname = DnsName::Parse("host" + std::to_string(i) + ".dyn.example.com").value();
    query.qtype = RrType::kA;
    if (edns_payload != 0) {
      query.edns.present = true;
      query.edns.udp_payload = edns_payload;
    }
    requests.push_back(EncodeWireQuery(query));
  }
  return requests;
}

// CDF of Zipf(s=1.0) over ranks 1..kZipfNames: P(rank k) proportional to 1/k.
std::vector<double> BuildZipfCdf() {
  std::vector<double> cdf(kZipfNames);
  double total = 0;
  for (int i = 0; i < kZipfNames; ++i) {
    total += 1.0 / (i + 1);
  }
  double acc = 0;
  for (int i = 0; i < kZipfNames; ++i) {
    acc += 1.0 / (i + 1) / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // float roundoff must not strand the last rank
  return cdf;
}

int OpenClientSocket(uint16_t port, int recv_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return -1;
  }
  timeval tv{};
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;  // lost datagrams must not wedge the loop
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One ping-pong client: a connected UDP socket issuing queries as fast as
// the server answers them. Fresh sockets per client give SO_REUSEPORT
// distinct 4-tuples to shard across workers. With a single request the
// client replays it; with several it samples Zipf(1.0) ranks via `cdf`.
void ClientLoop(uint16_t port, const std::vector<std::vector<uint8_t>>* requests,
                const std::vector<double>* cdf, uint64_t seed,
                std::chrono::steady_clock::time_point deadline, std::atomic<uint64_t>* answered,
                std::atomic<uint64_t>* lost) {
  int fd = OpenClientSocket(port, 100);
  if (fd < 0) {
    return;
  }
  uint64_t state = seed;
  uint8_t buffer[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    size_t rank = 0;
    if (requests->size() > 1) {
      double u = static_cast<double>(SplitMix64Next(&state) >> 11) * 0x1.0p-53;
      rank = std::lower_bound(cdf->begin(), cdf->end(), u) - cdf->begin();
    }
    const std::vector<uint8_t>& request = (*requests)[rank];
    if (::send(fd, request.data(), request.size(), 0) < 0) {
      break;
    }
    if (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
      answered->fetch_add(1, std::memory_order_relaxed);
    } else {
      lost->fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::close(fd);
}

// Runs `clients` ping-pong clients against `port` until `deadline`; returns
// the number of answered queries.
uint64_t DriveClients(uint16_t port, const std::vector<std::vector<uint8_t>>& requests,
                      const std::vector<double>& cdf, int clients,
                      std::chrono::steady_clock::time_point deadline,
                      std::atomic<uint64_t>* lost) {
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back(ClientLoop, port, &requests, &cdf, 0x5a50f00d + uint64_t{13} * c, deadline,
                      &answered, lost);
  }
  for (std::thread& client : pool) {
    client.join();
  }
  return answered.load();
}

// One request/response exchange with a bounded retry: after the timed window
// the server is idle, so a recv timeout means an actually lost datagram, and
// one resend settles it.
ssize_t Exchange(int fd, const std::vector<uint8_t>& request, uint8_t* buffer, size_t size) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (::send(fd, request.data(), request.size(), 0) < 0) {
      return -1;
    }
    ssize_t n = ::recv(fd, buffer, size, 0);
    if (n > 0) {
      return n;
    }
  }
  return -1;
}

// Byte-identity spot check: every distinct query served twice back to back
// must answer identically. With the cache on the second answer is spliced
// from the cached entry, so any divergence is a cache transparency bug; with
// it off this asserts the engine itself is deterministic.
int SpotCheckMismatches(uint16_t port, const std::vector<std::vector<uint8_t>>& requests) {
  int fd = OpenClientSocket(port, 500);
  if (fd < 0) {
    return static_cast<int>(requests.size());
  }
  int mismatches = 0;
  uint8_t first[4096];
  uint8_t second[4096];
  for (const std::vector<uint8_t>& request : requests) {
    ssize_t n1 = Exchange(fd, request, first, sizeof(first));
    ssize_t n2 = Exchange(fd, request, second, sizeof(second));
    if (n1 <= 0 || n1 != n2 || std::memcmp(first, second, static_cast<size_t>(n1)) != 0) {
      ++mismatches;
    }
  }
  ::close(fd);
  return mismatches;
}

Result<BenchResult> RunConfig(const BenchConfig& bench_config, int clients, double warmup,
                              double seconds) {
  ServerConfig config;
  config.udp_workers = bench_config.workers;
  config.enable_tcp = false;  // UDP throughput only
  config.backend = bench_config.backend;
  config.cache_entries = bench_config.cache_entries;
  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, KitchenSinkZone());
  if (!started.ok()) {
    return Result<BenchResult>::Error(started.error());
  }
  std::unique_ptr<DnsServer> server = std::move(started).value();

  std::vector<std::vector<uint8_t>> requests;
  std::vector<double> cdf{1.0};
  if (bench_config.workload == Workload::kZipf) {
    requests = BuildZipfRequests(bench_config.edns_payload);
    cdf = BuildZipfCdf();
  } else {
    WireQuery query;
    query.id = 0x5353;
    query.qname = DnsName::Parse("www.example.com").value();
    query.qtype = RrType::kA;
    if (bench_config.edns_payload != 0) {
      query.edns.present = true;
      query.edns.udp_payload = bench_config.edns_payload;
    }
    requests.push_back(EncodeWireQuery(query));
  }

  BenchResult result;
  result.config = bench_config;
  result.clients = clients;
  result.warmup = warmup;
  std::atomic<uint64_t> lost{0};

  // Warmup: same client pool, unmeasured. Brings sockets, worker shards,
  // branch predictors — and on the cache configurations, the hot cache
  // entries — to steady state before the timed window. (The server's latency
  // histogram still sees warmup samples — same query mix, so the percentiles
  // stay representative.)
  if (warmup > 0) {
    DriveClients(server->udp_port(), requests, cdf, clients,
                 std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(warmup)),
                 &lost);
    lost.store(0);
  }

  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
  result.queries = DriveClients(server->udp_port(), requests, cdf, clients, deadline, &lost);
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.qps = result.queries / result.seconds;
  if (bench_config.workload == Workload::kZipf) {
    result.spot_mismatches = SpotCheckMismatches(server->udp_port(), requests);
  }
  StatsSnapshot stats = server->Stats();
  result.p50_us = stats.LatencyPercentileUs(0.50);
  result.p99_us = stats.LatencyPercentileUs(0.99);
  result.cache_hits = stats.cache_hits;
  result.cache_misses = stats.cache_misses;
  if (stats.cache_hits + stats.cache_misses > 0) {
    result.hit_rate =
        static_cast<double>(stats.cache_hits) / (stats.cache_hits + stats.cache_misses);
  }
  server->Stop();
  if (result.queries == 0) {
    return Result<BenchResult>::Error("no queries were answered");
  }
  if (lost.load() > result.queries / 10) {
    std::fprintf(stderr, "warning: %llu of %llu datagrams timed out\n",
                 static_cast<unsigned long long>(lost.load()),
                 static_cast<unsigned long long>(result.queries));
  }
  return result;
}

int RunBench(double seconds, double warmup, int trials) {
  int max_workers = static_cast<int>(std::thread::hardware_concurrency());
  if (max_workers < 2) {
    max_workers = 2;
  }
  if (max_workers > 4) {
    max_workers = 4;
  }
  std::printf(
      "Serving-shell UDP throughput (kitchen-sink zone, %.1fs per config, %.1fs warmup, "
      "best of %d trial%s)\n\n",
      seconds, warmup, trials, trials == 1 ? "" : "s");

  // The same client pool drives every configuration, so each comparison
  // isolates one axis: worker count (SO_REUSEPORT scaling), backend (interp
  // vs compiled), or packet cache (on vs off under Zipf). The pool is sized
  // to keep one worker saturated even on the compiled backend, whose
  // per-query cost is a fraction of the interpreter's — too few ping-pong
  // clients and the measurement caps at the client pool's round-trip rate
  // instead of the server's capacity, and the worker's recvmmsg batches run
  // partially empty, charging the fast backend more syscalls per query than
  // the slow one (a saturated interp worker always has a full socket queue;
  // a compiled one drains it).
  // On a single hardware thread the multi-worker run measures contention
  // overhead rather than scaling — the JSON records whichever the host can
  // show.
  const int clients = max_workers * 16;
  std::vector<BenchConfig> configs;
  // Backend axis: the single hot query with the cache off, so the numbers
  // measure the execution backends and not the cache fast path (with the
  // cache on, a single-name ping-pong is ~100% hits and every backend
  // measures the same memcpy).
  for (BackendKind backend : {BackendKind::kInterp, BackendKind::kCompiled}) {
    for (int workers : {1, max_workers}) {
      configs.push_back({backend, workers, Workload::kPingPong, 0});
    }
  }
  // Cache axis: Zipf(1.0) over 256 wildcard names on the interp backend,
  // where per-query engine cost dominates and the cache win is the signal
  // rather than the noise.
  for (int workers : {1, max_workers}) {
    for (size_t cache_entries : {size_t{0}, size_t{4096}}) {
      configs.push_back({BackendKind::kInterp, workers, Workload::kZipf, cache_entries});
    }
  }
  // EDNS axis (ISSUE 10): the cache-on Zipf mix with every client
  // advertising 1232 then 4096. Measures OPT parse + echo overhead, and the
  // spot check now runs against EDNS answers — any cache entry leaking
  // across the plain/EDNS key split would fail byte identity.
  for (uint16_t edns_payload : {uint16_t{1232}, uint16_t{4096}}) {
    configs.push_back({BackendKind::kInterp, 1, Workload::kZipf, 4096, edns_payload});
  }
  std::vector<BenchResult> results(configs.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (size_t i = 0; i < configs.size(); ++i) {
      Result<BenchResult> run = RunConfig(configs[i], clients, warmup, seconds);
      if (!run.ok()) {
        // Sandboxes without loopback sockets still pass the CI gate.
        std::fprintf(stderr, "skipping: %s\n", run.error().c_str());
        return 0;
      }
      if (run.value().qps > results[i].qps) {
        BenchResult best = run.value();
        // Spot-check failures must fail the gate even if a cleaner trial
        // later posts a better qps.
        best.spot_mismatches += results[i].spot_mismatches;
        results[i] = best;
      } else {
        results[i].spot_mismatches += run.value().spot_mismatches;
      }
    }
  }
  for (const BenchResult& r : results) {
    std::printf("backend=%-8s workers=%d  workload=%-8s cache=%-3s edns=%-4s clients=%d  "
                "%8llu queries in %.2fs  = %8.0f q/s  p50=%lluus p99=%lluus",
                BackendKindName(r.config.backend), r.config.workers,
                WorkloadName(r.config.workload), r.config.cache_entries > 0 ? "on" : "off",
                EdnsName(r.config.edns_payload).c_str(), r.clients,
                static_cast<unsigned long long>(r.queries), r.seconds, r.qps,
                static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p99_us));
    if (r.config.cache_entries > 0) {
      std::printf("  hit_rate=%.1f%%", 100.0 * r.hit_rate);
    }
    std::printf("\n");
  }
  if (results.size() >= 4 && results[0].qps > 0 && results[2].qps > 0) {
    std::printf("\nscaling: interp %.2fx, compiled %.2fx at %d workers over 1\n",
                results[1].qps / results[0].qps, results[3].qps / results[2].qps,
                results[1].config.workers);
    std::printf("backend: compiled is %.1fx interp at 1 worker, %.1fx at %d workers\n",
                results[2].qps / results[0].qps, results[3].qps / results[1].qps,
                results[1].config.workers);
  }
  if (results.size() >= 8 && results[4].qps > 0 && results[6].qps > 0) {
    std::printf("cache:   Zipf(1.0) on/off = %.2fx at 1 worker (hit rate %.1f%%), "
                "%.2fx at %d workers (hit rate %.1f%%)\n",
                results[5].qps / results[4].qps, 100.0 * results[5].hit_rate,
                results[7].qps / results[6].qps, results[7].config.workers,
                100.0 * results[7].hit_rate);
  }
  if (results.size() >= 10 && results[5].qps > 0) {
    std::printf("edns:    Zipf cache-on at 1 worker, vs plain: 1232 = %.2fx, 4096 = %.2fx\n",
                results[8].qps / results[5].qps, results[9].qps / results[5].qps);
  }

  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "  {\"backend\": \"%s\", \"workers\": %d, \"workload\": \"%s\", "
                 "\"cache\": \"%s\", \"edns\": \"%s\", \"clients\": %d, \"warmup\": %g, "
                 "\"seconds\": %g, \"queries\": %llu, \"qps\": %.0f, \"p50_us\": %llu, "
                 "\"p99_us\": %llu, \"cache_hits\": %llu, \"cache_misses\": %llu, "
                 "\"hit_rate\": %.4f}%s\n",
                 BackendKindName(r.config.backend), r.config.workers,
                 WorkloadName(r.config.workload), r.config.cache_entries > 0 ? "on" : "off",
                 EdnsName(r.config.edns_payload).c_str(),
                 r.clients, r.warmup, r.seconds, static_cast<unsigned long long>(r.queries),
                 r.qps, static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us),
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses), r.hit_rate,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote BENCH_server.json\n");

  // Cache gate (smoke and full runs alike): cache-on Zipf configurations
  // must actually hit, and no Zipf configuration may ever answer the same
  // query two different ways.
  int failures = 0;
  for (const BenchResult& r : results) {
    if (r.config.workload != Workload::kZipf) {
      continue;
    }
    if (r.spot_mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %d byte-identity spot-check mismatch(es) at backend=%s workers=%d "
                   "cache=%s\n",
                   r.spot_mismatches, BackendKindName(r.config.backend), r.config.workers,
                   r.config.cache_entries > 0 ? "on" : "off");
      ++failures;
    }
    if (r.config.cache_entries > 0 && r.cache_hits == 0) {
      std::fprintf(stderr, "FAIL: cache-on Zipf run recorded zero hits at workers=%d\n",
                   r.config.workers);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

bool ParseDoubleFlag(const char* arg, const char* name, double* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  char* end = nullptr;
  double parsed = std::strtod(arg + prefix.size(), &end);
  if (end == arg + prefix.size() || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "bad value for --%s: '%s'\n", name, arg + prefix.size());
    std::exit(2);
  }
  *value = parsed;
  return true;
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) {
  double seconds = 2.0;
  double warmup = 0.5;
  double trials = 3;
  bool seconds_set = false;
  bool warmup_set = false;
  bool trials_set = false;
  for (int i = 1; i < argc; ++i) {
    double value = 0;
    if (std::string(argv[i]) == "--smoke") {
      if (!seconds_set) {
        seconds = 0.3;
      }
      if (!warmup_set) {
        warmup = 0.1;
      }
      if (!trials_set) {
        trials = 1;  // the CI gate checks liveness + cache transparency, not ratios
      }
    } else if (dnsv::ParseDoubleFlag(argv[i], "seconds", &value)) {
      seconds = value;
      seconds_set = true;
    } else if (dnsv::ParseDoubleFlag(argv[i], "warmup", &value)) {
      warmup = value;
      warmup_set = true;
    } else if (dnsv::ParseDoubleFlag(argv[i], "trials", &value)) {
      trials = value;
      trials_set = true;
    } else {
      std::fprintf(stderr,
                   "usage: server_throughput [--smoke] [--seconds=S] [--warmup=S] [--trials=N]\n");
      return 2;
    }
  }
  if (seconds <= 0) {
    std::fprintf(stderr, "--seconds must be > 0\n");
    return 2;
  }
  if (trials < 1 || trials != static_cast<int>(trials)) {
    std::fprintf(stderr, "--trials must be a positive integer\n");
    return 2;
  }
  return dnsv::RunBench(seconds, warmup, static_cast<int>(trials));
}

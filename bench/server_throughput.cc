// UDP throughput of the serving shell (docs/SERVER.md): queries/sec against
// a loopback DnsServer at 1 worker vs N workers, with per-config latency
// percentiles from the server's own stats. Not a paper figure — the numbers
// demonstrate that SO_REUSEPORT sharding actually scales the verified
// engine, and bound what a `--smoke` CI second buys.
//
// Besides the human-readable table, the harness writes BENCH_server.json
// (array of {workers, clients, seconds, queries, qps, p50_us, p99_us}) into
// the working directory for the CI gate.
//
//   $ bench/server_throughput            # ~2s per configuration
//   $ bench/server_throughput --smoke    # ~0.3s per configuration (CI)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

struct BenchResult {
  int workers = 0;
  int clients = 0;
  double seconds = 0;
  uint64_t queries = 0;
  double qps = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

// One ping-pong client: a connected UDP socket issuing the same query as
// fast as the server answers it. Fresh sockets per client give SO_REUSEPORT
// distinct 4-tuples to shard across workers.
void ClientLoop(uint16_t port, const std::vector<uint8_t>& request,
                std::chrono::steady_clock::time_point deadline, std::atomic<uint64_t>* answered,
                std::atomic<uint64_t>* lost) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return;
  }
  timeval tv{};
  tv.tv_usec = 100 * 1000;  // lost datagrams must not wedge the loop
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return;
  }
  uint8_t buffer[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    if (::send(fd, request.data(), request.size(), 0) < 0) {
      break;
    }
    if (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
      answered->fetch_add(1, std::memory_order_relaxed);
    } else {
      lost->fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::close(fd);
}

Result<BenchResult> RunConfig(int workers, int clients, double seconds) {
  ServerConfig config;
  config.udp_workers = workers;
  config.enable_tcp = false;  // UDP throughput only
  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, KitchenSinkZone());
  if (!started.ok()) {
    return Result<BenchResult>::Error(started.error());
  }
  std::unique_ptr<DnsServer> server = std::move(started).value();

  WireQuery query;
  query.id = 0x5353;
  query.qname = DnsName::Parse("www.example.com").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> request = EncodeWireQuery(query);

  BenchResult result;
  result.workers = workers;
  result.clients = clients;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> lost{0};
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back(ClientLoop, server->udp_port(), std::cref(request), deadline,
                      &answered, &lost);
  }
  for (std::thread& client : pool) {
    client.join();
  }
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.queries = answered.load();
  result.qps = result.queries / result.seconds;
  StatsSnapshot stats = server->Stats();
  result.p50_us = stats.LatencyPercentileUs(0.50);
  result.p99_us = stats.LatencyPercentileUs(0.99);
  server->Stop();
  if (result.queries == 0) {
    return Result<BenchResult>::Error("no queries were answered");
  }
  if (lost.load() > result.queries / 10) {
    std::fprintf(stderr, "warning: %llu of %llu datagrams timed out\n",
                 static_cast<unsigned long long>(lost.load()),
                 static_cast<unsigned long long>(result.queries));
  }
  return result;
}

int RunBench(bool smoke) {
  const double seconds = smoke ? 0.3 : 2.0;
  int max_workers = static_cast<int>(std::thread::hardware_concurrency());
  if (max_workers < 2) {
    max_workers = 2;
  }
  if (max_workers > 4) {
    max_workers = 4;
  }
  std::printf("Serving-shell UDP throughput (kitchen-sink zone, %.1fs per config)\n\n",
              seconds);

  // The same client pool drives both configurations, so the comparison
  // isolates the worker count; the pool is sized to keep one worker
  // saturated. On a single hardware thread the multi-worker run measures
  // contention overhead rather than scaling — the JSON records whichever
  // the host can show.
  const int clients = max_workers * 4;
  std::vector<BenchResult> results;
  for (int workers : {1, max_workers}) {
    Result<BenchResult> run = RunConfig(workers, clients, seconds);
    if (!run.ok()) {
      // Sandboxes without loopback sockets still pass the CI gate.
      std::fprintf(stderr, "skipping: %s\n", run.error().c_str());
      return 0;
    }
    results.push_back(run.value());
    std::printf("workers=%d  clients=%d  %8llu queries in %.2fs  = %8.0f q/s  "
                "p50=%lluus p99=%lluus\n",
                run.value().workers, run.value().clients,
                static_cast<unsigned long long>(run.value().queries), run.value().seconds,
                run.value().qps, static_cast<unsigned long long>(run.value().p50_us),
                static_cast<unsigned long long>(run.value().p99_us));
  }
  if (results.size() == 2 && results[0].qps > 0) {
    std::printf("\nscaling: %.2fx at %d workers over the single-worker baseline\n",
                results[1].qps / results[0].qps, results[1].workers);
  }

  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "  {\"workers\": %d, \"clients\": %d, \"seconds\": %g, \"queries\": %llu, "
                 "\"qps\": %.0f, \"p50_us\": %llu, \"p99_us\": %llu}%s\n",
                 r.workers, r.clients, r.seconds, static_cast<unsigned long long>(r.queries),
                 r.qps, static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote BENCH_server.json\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return dnsv::RunBench(smoke);
}

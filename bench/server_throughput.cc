// UDP throughput of the serving shell (docs/SERVER.md): queries/sec against
// a loopback DnsServer across two axes — 1 worker vs N workers, and the
// interp vs AOT-compiled execution backend (docs/BACKEND.md). Not a paper
// figure — the numbers demonstrate that SO_REUSEPORT sharding actually
// scales the verified engine, and that compiling the verified AbsIR buys the
// serving path a real single-worker speedup over interpreting it.
//
// Besides the human-readable table, the harness writes BENCH_server.json
// (array of {backend, workers, clients, warmup, seconds, queries, qps,
// p50_us, p99_us}) into the working directory for the CI gate.
//
//   $ bench/server_throughput                        # ~2s per configuration
//   $ bench/server_throughput --smoke                # ~0.3s per configuration (CI)
//   $ bench/server_throughput --seconds=5 --warmup=1 # explicit durations
//   $ bench/server_throughput --trials=5             # best of 5 interleaved trials
//
// Trials run round-robin across configurations (trial 1 of every config,
// then trial 2, ...) and each config reports its best trial. Interleaving
// matters on noisy hosts: a machine-wide slowdown (VM throttling, a
// background build) then taxes every configuration instead of whichever
// happened to run last, and best-of-N discards the taxed trials — external
// interference only ever makes a run slower, never faster.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

struct BenchResult {
  BackendKind backend = BackendKind::kInterp;
  int workers = 0;
  int clients = 0;
  double warmup = 0;
  double seconds = 0;
  uint64_t queries = 0;
  double qps = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

// One ping-pong client: a connected UDP socket issuing the same query as
// fast as the server answers it. Fresh sockets per client give SO_REUSEPORT
// distinct 4-tuples to shard across workers.
void ClientLoop(uint16_t port, const std::vector<uint8_t>& request,
                std::chrono::steady_clock::time_point deadline, std::atomic<uint64_t>* answered,
                std::atomic<uint64_t>* lost) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return;
  }
  timeval tv{};
  tv.tv_usec = 100 * 1000;  // lost datagrams must not wedge the loop
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return;
  }
  uint8_t buffer[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    if (::send(fd, request.data(), request.size(), 0) < 0) {
      break;
    }
    if (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
      answered->fetch_add(1, std::memory_order_relaxed);
    } else {
      lost->fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::close(fd);
}

// Runs `clients` ping-pong clients against `port` until `deadline`; returns
// the number of answered queries.
uint64_t DriveClients(uint16_t port, const std::vector<uint8_t>& request, int clients,
                      std::chrono::steady_clock::time_point deadline,
                      std::atomic<uint64_t>* lost) {
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back(ClientLoop, port, std::cref(request), deadline, &answered, lost);
  }
  for (std::thread& client : pool) {
    client.join();
  }
  return answered.load();
}

Result<BenchResult> RunConfig(BackendKind backend, int workers, int clients, double warmup,
                              double seconds) {
  ServerConfig config;
  config.udp_workers = workers;
  config.enable_tcp = false;  // UDP throughput only
  config.backend = backend;
  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, KitchenSinkZone());
  if (!started.ok()) {
    return Result<BenchResult>::Error(started.error());
  }
  std::unique_ptr<DnsServer> server = std::move(started).value();

  WireQuery query;
  query.id = 0x5353;
  query.qname = DnsName::Parse("www.example.com").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> request = EncodeWireQuery(query);

  BenchResult result;
  result.backend = backend;
  result.workers = workers;
  result.clients = clients;
  result.warmup = warmup;
  std::atomic<uint64_t> lost{0};

  // Warmup: same client pool, unmeasured. Brings sockets, worker shards, and
  // branch predictors to steady state before the timed window. (The server's
  // latency histogram still sees warmup samples — same query, same
  // distribution, so the percentiles stay representative.)
  if (warmup > 0) {
    DriveClients(server->udp_port(), request, clients,
                 std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(warmup)),
                 &lost);
    lost.store(0);
  }

  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds));
  result.queries = DriveClients(server->udp_port(), request, clients, deadline, &lost);
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.qps = result.queries / result.seconds;
  StatsSnapshot stats = server->Stats();
  result.p50_us = stats.LatencyPercentileUs(0.50);
  result.p99_us = stats.LatencyPercentileUs(0.99);
  server->Stop();
  if (result.queries == 0) {
    return Result<BenchResult>::Error("no queries were answered");
  }
  if (lost.load() > result.queries / 10) {
    std::fprintf(stderr, "warning: %llu of %llu datagrams timed out\n",
                 static_cast<unsigned long long>(lost.load()),
                 static_cast<unsigned long long>(result.queries));
  }
  return result;
}

int RunBench(double seconds, double warmup, int trials) {
  int max_workers = static_cast<int>(std::thread::hardware_concurrency());
  if (max_workers < 2) {
    max_workers = 2;
  }
  if (max_workers > 4) {
    max_workers = 4;
  }
  std::printf(
      "Serving-shell UDP throughput (kitchen-sink zone, %.1fs per config, %.1fs warmup, "
      "best of %d trial%s)\n\n",
      seconds, warmup, trials, trials == 1 ? "" : "s");

  // The same client pool drives every configuration, so each comparison
  // isolates one axis: worker count (SO_REUSEPORT scaling) or backend
  // (interp vs compiled). The pool is sized to keep one worker saturated
  // even on the compiled backend, whose per-query cost is a fraction of the
  // interpreter's — too few ping-pong clients and the measurement caps at
  // the client pool's round-trip rate instead of the server's capacity, and
  // the worker's recvmmsg batches run partially empty, charging the fast
  // backend more syscalls per query than the slow one (a saturated interp
  // worker always has a full socket queue; a compiled one drains it).
  // On a single hardware thread the multi-worker run measures contention
  // overhead rather than scaling — the JSON records whichever the host can
  // show.
  const int clients = max_workers * 16;
  struct Config {
    BackendKind backend;
    int workers;
  };
  std::vector<Config> configs;
  for (BackendKind backend : {BackendKind::kInterp, BackendKind::kCompiled}) {
    for (int workers : {1, max_workers}) {
      configs.push_back({backend, workers});
    }
  }
  std::vector<BenchResult> results(configs.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (size_t i = 0; i < configs.size(); ++i) {
      Result<BenchResult> run =
          RunConfig(configs[i].backend, configs[i].workers, clients, warmup, seconds);
      if (!run.ok()) {
        // Sandboxes without loopback sockets still pass the CI gate.
        std::fprintf(stderr, "skipping: %s\n", run.error().c_str());
        return 0;
      }
      if (run.value().qps > results[i].qps) {
        results[i] = run.value();
      }
    }
  }
  for (const BenchResult& r : results) {
    std::printf("backend=%-8s workers=%d  clients=%d  %8llu queries in %.2fs  = %8.0f q/s  "
                "p50=%lluus p99=%lluus\n",
                BackendKindName(r.backend), r.workers, r.clients,
                static_cast<unsigned long long>(r.queries), r.seconds, r.qps,
                static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p99_us));
  }
  if (results.size() == 4 && results[0].qps > 0 && results[2].qps > 0) {
    std::printf("\nscaling: interp %.2fx, compiled %.2fx at %d workers over 1\n",
                results[1].qps / results[0].qps, results[3].qps / results[2].qps,
                results[1].workers);
    std::printf("backend: compiled is %.1fx interp at 1 worker, %.1fx at %d workers\n",
                results[2].qps / results[0].qps, results[3].qps / results[1].qps,
                results[1].workers);
  }

  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "  {\"backend\": \"%s\", \"workers\": %d, \"clients\": %d, \"warmup\": %g, "
                 "\"seconds\": %g, \"queries\": %llu, \"qps\": %.0f, \"p50_us\": %llu, "
                 "\"p99_us\": %llu}%s\n",
                 BackendKindName(r.backend), r.workers, r.clients, r.warmup, r.seconds,
                 static_cast<unsigned long long>(r.queries), r.qps,
                 static_cast<unsigned long long>(r.p50_us),
                 static_cast<unsigned long long>(r.p99_us), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote BENCH_server.json\n");
  return 0;
}

bool ParseDoubleFlag(const char* arg, const char* name, double* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  char* end = nullptr;
  double parsed = std::strtod(arg + prefix.size(), &end);
  if (end == arg + prefix.size() || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "bad value for --%s: '%s'\n", name, arg + prefix.size());
    std::exit(2);
  }
  *value = parsed;
  return true;
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) {
  double seconds = 2.0;
  double warmup = 0.5;
  double trials = 3;
  bool seconds_set = false;
  bool warmup_set = false;
  bool trials_set = false;
  for (int i = 1; i < argc; ++i) {
    double value = 0;
    if (std::string(argv[i]) == "--smoke") {
      if (!seconds_set) {
        seconds = 0.3;
      }
      if (!warmup_set) {
        warmup = 0.1;
      }
      if (!trials_set) {
        trials = 1;  // the CI gate checks liveness, not the ratio
      }
    } else if (dnsv::ParseDoubleFlag(argv[i], "seconds", &value)) {
      seconds = value;
      seconds_set = true;
    } else if (dnsv::ParseDoubleFlag(argv[i], "warmup", &value)) {
      warmup = value;
      warmup_set = true;
    } else if (dnsv::ParseDoubleFlag(argv[i], "trials", &value)) {
      trials = value;
      trials_set = true;
    } else {
      std::fprintf(stderr,
                   "usage: server_throughput [--smoke] [--seconds=S] [--warmup=S] [--trials=N]\n");
      return 2;
    }
  }
  if (seconds <= 0) {
    std::fprintf(stderr, "--seconds must be > 0\n");
    return 2;
  }
  if (trials < 1 || trials != static_cast<int>(trials)) {
    std::fprintf(stderr, "--trials must be a positive integer\n");
    return 2;
  }
  return dnsv::RunBench(seconds, warmup, static_cast<int>(trials));
}

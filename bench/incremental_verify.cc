// Incremental re-verification benchmark (docs/INCREMENTAL.md): what the
// content-addressed artifact store buys across the Janus-style workflows.
//
//   cold    all six engine versions verified into a fresh store
//   warm    the same six versions again — every report must be replayed from
//           the store, byte-identical, with ZERO new Z3 checks
//   shadow  one version re-verified from scratch under StoreMode::kShadow,
//           which asserts byte-identity against the stored report
//   edit    cold-verify v3.0 into a fresh store, then verify dev against it:
//           only the layers whose function cones changed may be recomputed
//
// The harness is an acceptance gate, not just a stopwatch: it exits nonzero
// if any warm run fails to replay, any normalized report drifts between cold
// and warm, a warm run issues a new Z3 check, warm layer reuse drops below
// 95%, or the edit scenario loses cross-version reuse. It writes
// BENCH_incremental.json (one record per version per phase) into the working
// directory. --smoke restricts to {golden, v2.0} for the CI quick pass.
//
// The zone is KitchenSinkZone: unlike the Fig.-11 zone (where the interval
// pre-solver discharges 100% of queries), it actually reaches Z3, so the
// warm-side "zero new Z3 checks" and qcache-persistence assertions are
// meaningful.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/dns/example_zones.h"
#include "src/dnsv/incremental.h"
#include "src/dnsv/pipeline.h"
#include "src/smt/query_cache.h"
#include "src/smt/z3_backend.h"
#include "src/store/store.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

struct Row {
  std::string version;
  std::string phase;
  bool replayed = false;
  bool shadow_checked = false;
  int64_t z3_delta = 0;
  int64_t layers_total = 0;
  int64_t layers_reused = 0;
  int64_t functions_total = 0;
  int64_t functions_reused = 0;
  int64_t qcache_loaded = 0;
  double seconds = 0;
  std::vector<std::string> dirty_layers;
};

bool g_ok = true;

void Check(bool cond, const std::string& what) {
  if (!cond) {
    std::printf("FAIL: %s\n", what.c_str());
    g_ok = false;
  }
}

VerifyOptions BaseOptions(ArtifactStore* store, StoreMode mode) {
  VerifyOptions options;
  options.use_summaries = true;
  options.prune = true;
  options.store = store;
  options.store_mode = mode;
  return options;
}

Row Run(VerifyContext* context, EngineVersion version, ArtifactStore* store,
        StoreMode mode, const char* phase, std::string* normalized) {
  const int64_t z3_before = Z3Backend::TotalChecks();
  VerificationReport report =
      RunVerifyPipeline(context, version, KitchenSinkZone(), BaseOptions(store, mode));
  Row row;
  row.version = EngineVersionName(version);
  row.phase = phase;
  row.replayed = report.incremental.replayed;
  row.shadow_checked = report.incremental.shadow_checked;
  row.z3_delta = Z3Backend::TotalChecks() - z3_before;
  row.layers_total = report.incremental.layers_total;
  row.layers_reused = report.incremental.layers_reused;
  row.functions_total = report.incremental.functions_total;
  row.functions_reused = report.incremental.functions_reused;
  row.qcache_loaded = report.incremental.qcache_entries_loaded;
  row.seconds = report.total_seconds;
  row.dirty_layers = report.incremental.dirty_layers;
  Check(!report.aborted, StrCat(row.version, " ", phase, ": pipeline aborted: ",
                                report.abort_reason));
  if (normalized != nullptr) {
    *normalized = NormalizedReportText(report);
  }
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-8s %-7s replay=%d %9lld z3  layers %2lld/%-2lld  fns %3lld/%-3lld  "
              "qload %4lld  %7.3fs\n",
              row.version.c_str(), row.phase.c_str(), row.replayed ? 1 : 0,
              static_cast<long long>(row.z3_delta),
              static_cast<long long>(row.layers_reused),
              static_cast<long long>(row.layers_total),
              static_cast<long long>(row.functions_reused),
              static_cast<long long>(row.functions_total),
              static_cast<long long>(row.qcache_loaded), row.seconds);
}

std::string JsonRecord(const Row& row) {
  std::string dirty = "[";
  for (size_t i = 0; i < row.dirty_layers.size(); ++i) {
    dirty += StrCat(i == 0 ? "" : ", ", "\"", row.dirty_layers[i], "\"");
  }
  dirty += "]";
  return StrCat("  {\"version\": \"", row.version, "\", \"phase\": \"", row.phase,
                "\", \"replayed\": ", row.replayed ? "true" : "false",
                ", \"shadow_checked\": ", row.shadow_checked ? "true" : "false",
                ", \"z3_checks\": ", row.z3_delta,
                ", \"layers_total\": ", row.layers_total,
                ", \"layers_reused\": ", row.layers_reused,
                ", \"functions_total\": ", row.functions_total,
                ", \"functions_reused\": ", row.functions_reused,
                ", \"qcache_entries_loaded\": ", row.qcache_loaded,
                ", \"seconds\": ", row.seconds, ", \"dirty_layers\": ", dirty, "}");
}

int RunBench(bool smoke) {
  // The harness owns its configuration: environment overrides would collapse
  // the cold/warm/shadow distinction.
  unsetenv("DNSV_SOLVER_FORCE");
  unsetenv("DNSV_STORE_FORCE");
  unsetenv("DNSV_STORE_DIR");

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("dnsv-bench-incremental-" + std::to_string(::getpid()));
  fs::remove_all(root);
  ArtifactStore store((root / "main").string());

  std::vector<EngineVersion> versions;
  if (smoke) {
    versions = {EngineVersion::kGolden, EngineVersion::kV2};
  } else {
    for (EngineVersion version : AllEngineVersions()) versions.push_back(version);
  }

  std::printf("Incremental verification: cold vs. warm over the artifact store\n");
  std::printf("zone: kitchen-sink; store: %s\n\n", store.root().c_str());

  std::vector<Row> rows;
  std::vector<std::string> cold_text(versions.size());

  // Phase 1: cold. Every layer is dirty; artifacts and solver verdicts are
  // written back.
  for (size_t i = 0; i < versions.size(); ++i) {
    VerifyContext context;
    QueryCache::Global()->Clear();
    Row row = Run(&context, versions[i], &store, StoreMode::kIncremental, "cold",
                  &cold_text[i]);
    Check(!row.replayed, StrCat(row.version, " cold: unexpectedly replayed"));
    PrintRow(row);
    rows.push_back(std::move(row));
  }

  // Phase 2: warm. Fresh contexts and a cleared global query cache make the
  // store the only channel: each report must be served verbatim with no new
  // Z3 checks and full layer reuse.
  std::printf("\n");
  for (size_t i = 0; i < versions.size(); ++i) {
    VerifyContext context;
    QueryCache::Global()->Clear();
    std::string warm_text;
    Row row = Run(&context, versions[i], &store, StoreMode::kIncremental, "warm",
                  &warm_text);
    Check(row.replayed, StrCat(row.version, " warm: not replayed from the store"));
    Check(row.z3_delta == 0,
          StrCat(row.version, " warm: issued ", row.z3_delta, " new Z3 checks"));
    Check(warm_text == cold_text[i],
          StrCat(row.version, " warm: normalized report drifted from cold"));
    Check(row.layers_total > 0 &&
              row.layers_reused * 100 >= row.layers_total * 95,
          StrCat(row.version, " warm: layer reuse ", row.layers_reused, "/",
                 row.layers_total, " below 95%"));
    PrintRow(row);
    rows.push_back(std::move(row));
  }

  // Phase 3: shadow. Recompute one version from scratch; the pipeline itself
  // asserts byte-identity against the stored report (DNSV_CHECK aborts on
  // drift), so surviving the run is the check.
  std::printf("\n");
  {
    VerifyContext context;
    QueryCache::Global()->Clear();
    Row row = Run(&context, versions[0], &store, StoreMode::kShadow, "shadow", nullptr);
    Check(row.shadow_checked,
          StrCat(row.version, " shadow: stored report was not cross-checked"));
    Check(!row.replayed, StrCat(row.version, " shadow: must recompute, not replay"));
    PrintRow(row);
    rows.push_back(std::move(row));
  }

  // Phase 4: edit scenario. Verify v3.0 cold into a fresh store, then verify
  // dev against it. dev's sources differ from v3.0 in a few functions, so the
  // content-addressed markers must carry every untouched layer across the
  // version boundary while the dirty cone is recomputed.
  std::printf("\n");
  {
    ArtifactStore edit_store((root / "edit").string());
    VerifyContext cold_context;
    QueryCache::Global()->Clear();
    Row base = Run(&cold_context, EngineVersion::kV3, &edit_store,
                   StoreMode::kIncremental, "edit0", nullptr);
    PrintRow(base);
    rows.push_back(std::move(base));

    VerifyContext warm_context;
    QueryCache::Global()->Clear();
    Row edited = Run(&warm_context, EngineVersion::kDev, &edit_store,
                     StoreMode::kIncremental, "edit1", nullptr);
    Check(!edited.replayed, "edit: dev after v3.0 must not replay v3.0's report");
    Check(edited.layers_reused > 0,
          "edit: no cross-version layer reuse (markers not content-addressed?)");
    Check(edited.layers_reused < edited.layers_total,
          "edit: dev reused every layer despite differing from v3.0");
    Check(!edited.dirty_layers.empty(), "edit: dirty layer set is empty");
    std::string dirty = JoinStrings(edited.dirty_layers, ", ");
    std::printf("edit: dev vs v3.0 store — dirty layers: %s\n", dirty.c_str());
    PrintRow(edited);
    rows.push_back(std::move(edited));
  }

  std::string json = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += StrCat(i == 0 ? "" : ",\n", JsonRecord(rows[i]));
  }
  json += "\n]\n";
  std::FILE* out = std::fopen("BENCH_incremental.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_incremental.json\n");
  }

  fs::remove_all(root);
  std::printf("%s\n", g_ok ? "incremental bench OK" : "incremental bench FAILED");
  return g_ok ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  return dnsv::RunBench(smoke);
}

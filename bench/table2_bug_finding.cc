// Table 2 reproduction: issues prevented from reaching production by
// formal verification, across engine versions v1.0, v2.0, v3.0, and dev.
//
// For each version, DNS-V verifies the engine against the top-level
// specification over a corpus of bug-revealing zones; every reported issue is
// confirmed by concrete re-execution and classified in the paper's taxonomy
// (Wrong Flag / Wrong Authority / Wrong Answer / Wrong rcode /
// Wrong Additional / Runtime Error). The golden engine verifies clean.
#include <cstdio>
#include <map>
#include <set>

#include "src/dnsv/pipeline.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Compact zones sized for exhaustive symbolic execution that still reveal
// every Table-2 bug (the paper uses tens of thousands of generated zones;
// these two are the distilled equivalents).
ZoneConfig WildcardZone() {
  // Reveals: #1 AA on wildcard, #2 NS authority on positives, #3 MX matching,
  // #5 wildcard glue, #6 deep wildcard search, #7 SOA-mname glue, #8 ENT
  // wildcard fallback.
  return ParseZoneText(R"(
$ORIGIN corp.test.
@        SOA  ns1 7
@        NS   ns1.corp.test.
ns1      A    198.51.100.1
shop     MX   10 ns1
shop     A    198.51.100.30
*        TXT  99
*        MX   20 ns1
deep.box A    198.51.100.40
)").value();
}

ZoneConfig DelegationZone() {
  // Reveals: #4 multi-NS glue, #9 runtime error (NXDOMAIN under the apex
  // with no wildcard to fall back to).
  return ParseZoneText(R"(
$ORIGIN corp.test.
@        SOA  ns1 7
@        NS   ns1.corp.test.
ns1      A    198.51.100.1
child    NS   ns1.child.corp.test.
child    NS   ns2.child.corp.test.
ns1.child A   198.51.100.51
ns2.child A   198.51.100.52
)").value();
}

int RunTable2() {
  std::printf("Table 2: issues found by formal verification per engine version\n");
  std::printf("(each issue confirmed by concrete re-execution of the counterexample)\n\n");
  std::printf("%-8s %-10s %-28s %-30s %s\n", "Version", "Zone", "Classification",
              "Counterexample", "Confirmed");

  struct ZoneCase {
    const char* name;
    ZoneConfig zone;
  };
  std::vector<ZoneCase> zones = {{"wildcard", WildcardZone()},
                                 {"delegation", DelegationZone()}};

  std::map<std::string, std::set<std::string>> found_by_version;
  int total_issues = 0;
  VerifyContext context;  // each version compiles once, reused across both zones
  for (EngineVersion version : AllEngineVersions()) {
    bool any = false;
    for (const ZoneCase& zone_case : zones) {
      VerifyOptions options;
      options.max_issues = 6;
      VerificationReport report = RunVerifyPipeline(&context, version, zone_case.zone, options);
      if (report.aborted) {
        std::printf("%-8s %-10s ABORTED: %s\n", EngineVersionName(version), zone_case.name,
                    report.abort_reason.c_str());
        continue;
      }
      for (const VerificationIssue& issue : report.issues) {
        std::string classification =
            issue.classification.empty() ? "(unclassified)" : issue.classification;
        std::string query = StrCat(issue.qname, " ", RrTypeDisplay(issue.qtype));
        if (query.size() > 29) {
          query = query.substr(0, 26) + "...";
        }
        std::printf("%-8s %-10s %-28s %-30s %s\n", EngineVersionName(version), zone_case.name,
                    classification.c_str(), query.c_str(), issue.confirmed ? "yes" : "NO");
        for (const std::string& kind : SplitString(classification, '/')) {
          found_by_version[EngineVersionName(version)].insert(kind);
        }
        ++total_issues;
        any = true;
      }
    }
    if (!any) {
      std::printf("%-8s %-10s %-28s\n", EngineVersionName(version), "(all)",
                  "VERIFIED - no issues");
    }
  }

  std::printf("\nClassification coverage per version (paper Table 2 expectations):\n");
  std::printf("  v1.0  expects Wrong Flag, Wrong Authority, Wrong Answer\n");
  std::printf("  v2.0  expects Wrong Additional, Wrong Answer/rcode\n");
  std::printf("  v3.0  expects Wrong Answer/rcode (ENT wildcard)\n");
  std::printf("  dev   expects Wrong Answer/rcode + Runtime Error\n");
  std::printf("  golden expects none\n\n");
  for (const auto& [version, kinds] : found_by_version) {
    std::printf("  %-8s found:", version.c_str());
    for (const std::string& kind : kinds) {
      std::printf(" [%s]", kind.c_str());
    }
    std::printf("\n");
  }
  std::printf("\ntotal confirmed issues: %d\n", total_issues);
  const VerifyContext::CacheStats& cache = context.cache_stats();
  std::printf("pipeline cache: %lld compiles (%lld hits), %lld zone lifts (%lld hits)\n",
              static_cast<long long>(cache.engine_compiles),
              static_cast<long long>(cache.engine_cache_hits),
              static_cast<long long>(cache.zone_lifts),
              static_cast<long long>(cache.zone_cache_hits));
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunTable2(); }

// Throughput of the wire fuzzing harness (docs/WIRE.md): packets/sec for
// the codec round-trip pass and queries/sec for the engine-vs-spec
// differential pass. Not a paper figure — the numbers bound how much fuzzing
// a CI minute buys, which is what sizes the --smoke configuration.
#include <chrono>
#include <cstdio>

#include "src/dns/example_zones.h"
#include "src/fuzz/fuzzer.h"

namespace dnsv {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int RunThroughput() {
  std::printf("Wire fuzzing throughput (seed 0xD15EA5E, bug-hunt zone)\n\n");

  // Pass 1: codec round-trip. No engine involved — this is the codec's own
  // parse/encode fixpoint and mutant-containment machinery.
  RoundTripOptions rt_options;
  rt_options.iterations = 5000;  // 30k packets
  auto rt_start = std::chrono::steady_clock::now();
  RoundTripStats rt = RunRoundTripFuzz(rt_options, BugHuntZone());
  double rt_seconds = Seconds(rt_start);
  std::printf("round-trip:    %8lld packets in %6.2fs  = %9.0f packets/sec  (violations: %lld)\n",
              static_cast<long long>(rt.packets), rt_seconds, rt.packets / rt_seconds,
              static_cast<long long>(rt.violations));

  // Pass 2: differential execution. Dominated by the concrete interpreter
  // running engine Resolve + spec rrlookup per query per version.
  DifferentialOptions diff_options;
  diff_options.random_queries = 600;
  std::vector<EngineVersion> versions = AllEngineVersions();
  auto diff_start = std::chrono::steady_clock::now();
  Result<DifferentialStats> diff = RunDifferentialFuzz(versions, BugHuntZone(), diff_options);
  double diff_seconds = Seconds(diff_start);
  if (!diff.ok()) {
    std::printf("differential pass failed: %s\n", diff.error().c_str());
    return 1;
  }
  long long executions =
      diff.value().queries_per_version * static_cast<long long>(versions.size());
  std::printf("differential:  %8lld queries in %6.2fs  = %9.0f queries/sec  (6 versions,\n"
              "               engine + spec interpreter run per query; includes compiles)\n",
              executions, diff_seconds, executions / diff_seconds);
  for (EngineVersion version : versions) {
    std::printf("               %-8s %4lld divergent\n", EngineVersionName(version),
                static_cast<long long>(diff.value().DivergenceCount(version)));
  }
  return rt.ok() ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunThroughput(); }

// Scalability sweep (not a paper figure, but the question every §8 reader
// asks): how does whole-engine verification time grow with zone size? The
// engine exploration grows with tree shape; the spec side grows with the
// record count because rrlookup filters the whole list per path.
#include <cstdio>

#include "src/dnsv/pipeline.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

int RunScalability() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Scalability: golden-engine verification time vs zone size\n\n");
  std::printf("%8s %8s %10s %12s %14s %12s\n", "names", "records", "time (s)",
              "engine paths", "solver checks", "verdict");
  VerifyContext context;  // one golden-engine compile across the whole sweep
  for (int names : {2, 4, 6, 8}) {
    ZoneGenOptions options;
    options.max_names = names;
    options.max_depth = 2;
    ZoneConfig zone = GenerateZone(17, options);  // same seed: nested workloads
    VerificationReport report = RunVerifyPipeline(&context, EngineVersion::kGolden, zone);
    std::printf("%8d %8zu %10.2f %12lld %14lld %12s\n", names, zone.records.size(),
                report.total_seconds, static_cast<long long>(report.engine_paths),
                static_cast<long long>(report.solver_checks),
                report.aborted ? "ABORTED" : report.verified ? "verified" : "issues");
  }
  std::printf("\nshape: super-linear in record count (engine paths x spec paths per path),\n");
  std::printf("which is why the paper verifies per-zone snapshots rather than one giant\n");
  std::printf("configuration, and why concrete domain trees (§6.5) matter.\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunScalability(); }

// Figure 12 reproduction: per-layer symbolic execution / summarization time
// for each engine version. The paper reports that every layer finishes in
// under one minute; the reproduced claim is the same shape: library layers
// are fast, the summarized resolution layers take longer but each stays well
// under a minute, and the top-level Resolve check dominates.
//
// All versions run over one shared VerifyContext, so each engine compiles
// once and the zone lifts once per version — the Resolve row's full pipeline
// run reuses both. The per-stage breakdown printed under each version comes
// straight from VerificationReport::stages.
#include <cstdio>

#include "src/dnsv/layers.h"
#include "src/dns/zone.h"

namespace dnsv {
namespace {

ZoneConfig Fig12Zone() {
  // Medium zone with all features: a realistic per-layer workload.
  return ParseZoneText(R"(
$ORIGIN example.com.
@        SOA   ns1 2024
@        NS    ns1.example.com.
ns1      A     192.0.2.1
www      A     192.0.2.10
alias    CNAME www
*.dyn    A     192.0.2.99
sub      NS    ns1.sub.example.com.
ns1.sub  A     192.0.2.51
)").value();
}

int RunFig12() {
  std::printf("Figure 12: per-layer symbolic execution + summarization time\n");
  std::printf("zone: example.com (wildcard + delegation + CNAME), one series per version\n\n");
  VerifyContext context;  // shared: one compile + one lift per version
  for (EngineVersion version : AllEngineVersions()) {
    std::printf("--- engine %s ---\n", EngineVersionName(version));
    std::printf("%-12s %-12s %10s %10s %8s %14s  %s\n", "layer", "mode", "seconds",
                "solve (s)", "paths", "solver checks", "status");
    double total = 0;
    LayerMeasurement measurement = MeasureLayers(&context, version, Fig12Zone());
    for (const LayerTiming& timing : measurement.rows) {
      std::printf("%-12s %-12s %10.3f %10.3f %8lld %14lld  %s\n", timing.layer.c_str(),
                  LayerKindName(timing.kind), timing.seconds, timing.solve_seconds,
                  static_cast<long long>(timing.paths),
                  static_cast<long long>(timing.solver_checks),
                  timing.ok ? "ok" : timing.note.c_str());
      total += timing.seconds;
    }
    std::printf("%-12s %-12s %10.3f\n", "TOTAL", "", total);
    std::printf("Resolve pipeline stages (%s exploration):\n",
                measurement.resolve_report.explored_in_parallel ? "parallel" : "serial");
    for (const StageStats& stage : measurement.resolve_report.stages) {
      std::printf("%s\n", stage.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("paper expectation: every layer under one minute; summarized layers\n");
  std::printf("cost more than library layers; Resolve (whole-engine check) dominates.\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunFig12(); }

// Figure 12 reproduction: per-layer symbolic execution / summarization time
// for each engine version. The paper reports that every layer finishes in
// under one minute; the reproduced claim is the same shape: library layers
// are fast, the summarized resolution layers take longer but each stays well
// under a minute, and the top-level Resolve check dominates.
#include <cstdio>

#include "src/dnsv/layers.h"
#include "src/dns/zone.h"

namespace dnsv {
namespace {

ZoneConfig Fig12Zone() {
  // Medium zone with all features: a realistic per-layer workload.
  return ParseZoneText(R"(
$ORIGIN example.com.
@        SOA   ns1 2024
@        NS    ns1.example.com.
ns1      A     192.0.2.1
www      A     192.0.2.10
alias    CNAME www
*.dyn    A     192.0.2.99
sub      NS    ns1.sub.example.com.
ns1.sub  A     192.0.2.51
)").value();
}

int RunFig12() {
  std::printf("Figure 12: per-layer symbolic execution + summarization time\n");
  std::printf("zone: example.com (wildcard + delegation + CNAME), one series per version\n\n");
  for (EngineVersion version : AllEngineVersions()) {
    std::printf("--- engine %s ---\n", EngineVersionName(version));
    std::printf("%-12s %-12s %10s %8s %14s  %s\n", "layer", "mode", "seconds", "paths",
                "solver checks", "status");
    double total = 0;
    for (const LayerTiming& timing : MeasureLayerTimes(version, Fig12Zone())) {
      std::printf("%-12s %-12s %10.3f %8lld %14lld  %s\n", timing.layer.c_str(),
                  LayerKindName(timing.kind), timing.seconds,
                  static_cast<long long>(timing.paths),
                  static_cast<long long>(timing.solver_checks),
                  timing.ok ? "ok" : timing.note.c_str());
      total += timing.seconds;
    }
    std::printf("%-12s %-12s %10.3f\n\n", "TOTAL", "", total);
  }
  std::printf("paper expectation: every layer under one minute; summarized layers\n");
  std::printf("cost more than library layers; Resolve (whole-engine check) dominates.\n");
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunFig12(); }

// Solver-layer ablation: what the query cache and the interval pre-solver
// (src/smt/backend.h) buy on the Fig.-11 zone. For each engine version the
// same verification runs under three configurations — direct-to-Z3, cache
// only, cache + pre-solver — and the table compares Z3 checks, cache hit
// rate, pre-solver discharge rate, and wall-clock. The layers are sound by
// construction (verdict-only caching, model replay), so all three runs must
// agree on the verdict and every counterexample byte-for-byte; the harness
// asserts exactly that before it reports any numbers.
//
// Besides the human-readable table, the harness writes BENCH_solver.json
// (machine-readable, one record per version per config) into the working
// directory.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/dnsv/pipeline.h"
#include "src/smt/query_cache.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

std::string IssueDigest(const VerificationReport& report) {
  std::string digest = StrCat("verified=", report.verified ? 1 : 0,
                              " aborted=", report.aborted ? 1 : 0, ";");
  for (const VerificationIssue& issue : report.issues) {
    digest += issue.ToString();
  }
  return digest;
}

struct Config {
  const char* name = "";
  SolverLayering layering = SolverLayering::kDirect;
};

constexpr Config kConfigs[] = {
    {"direct", SolverLayering::kDirect},
    {"cache", SolverLayering::kCache},
    {"cache+presolve", SolverLayering::kCachePresolve},
};

struct Cell {
  VerificationReport report;
  double hit_rate = 0;        // cache hits / layered queries
  double discharge_rate = 0;  // presolver discharges / layered queries
};

int RunAblation() {
  // The environment override would collapse the configurations into one and
  // make the comparison meaningless; this harness owns the configuration.
  unsetenv("DNSV_SOLVER_FORCE");

  std::printf("Solver-layer ablation: query cache + interval pre-solver vs. direct Z3\n");
  std::printf("zone: Fig. 11 (example.com with cs/web.cs/zoo.cs subtree)\n\n");
  std::printf("%-8s %-15s %9s %9s %10s %10s %9s\n", "version", "config", "queries",
              "z3", "hit rate", "discharge", "wall (s)");

  VerifyContext context;
  bool sound = true;
  std::string json = "[\n";
  bool first_record = true;
  for (EngineVersion version : AllEngineVersions()) {
    std::vector<Cell> cells;
    // Each configuration gets a fresh cache: hit rates measure one run over
    // one version, not leftovers from the previous version (production uses
    // the shared process-wide cache and does even better).
    for (const Config& config : kConfigs) {
      QueryCache cache;
      VerifyOptions options;
      options.use_summaries = true;
      options.solver.layering = config.layering;
      options.solver.cache = &cache;
      Cell cell;
      cell.report = RunVerifyPipeline(&context, version, Figure11Zone(), options);
      const SolverStats& s = cell.report.solver;
      if (s.queries > 0) {
        cell.hit_rate = static_cast<double>(s.cache_hits) / static_cast<double>(s.queries);
        cell.discharge_rate =
            static_cast<double>(s.presolver_discharges) / static_cast<double>(s.queries);
      }
      cells.push_back(std::move(cell));
    }

    // Soundness gate: all three configurations must agree byte-for-byte.
    const VerificationReport& base = cells[0].report;
    for (size_t i = 1; i < cells.size(); ++i) {
      const VerificationReport& layered = cells[i].report;
      if (IssueDigest(base) != IssueDigest(layered) ||
          base.engine_paths != layered.engine_paths ||
          base.spec_paths != layered.spec_paths) {
        std::printf("%-8s SOUNDNESS VIOLATION: %s disagrees with direct\n",
                    EngineVersionName(version), kConfigs[i].name);
        sound = false;
      }
      // The acceptance bar: layering must strictly reduce Z3 checks.
      if (layered.solver.z3_checks >= base.solver.z3_checks) {
        std::printf("%-8s REGRESSION: %s did not reduce Z3 checks (%lld vs %lld)\n",
                    EngineVersionName(version), kConfigs[i].name,
                    static_cast<long long>(layered.solver.z3_checks),
                    static_cast<long long>(base.solver.z3_checks));
        sound = false;
      }
    }

    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      const SolverStats& s = cell.report.solver;
      std::printf("%-8s %-15s %9lld %9lld %9.1f%% %9.1f%% %9.3f\n",
                  EngineVersionName(version), kConfigs[i].name,
                  static_cast<long long>(s.queries), static_cast<long long>(s.z3_checks),
                  100 * cell.hit_rate, 100 * cell.discharge_rate,
                  cell.report.total_seconds);
      json += StrCat(first_record ? "" : ",\n", "  {\"version\": \"",
                     EngineVersionName(version), "\", \"config\": \"", kConfigs[i].name,
                     "\", \"queries\": ", s.queries, ", \"z3_checks\": ", s.z3_checks,
                     ", \"cache_hits\": ", s.cache_hits,
                     ", \"cache_hit_rate\": ", cell.hit_rate,
                     ", \"presolver_discharges\": ", s.presolver_discharges,
                     ", \"presolver_discharge_rate\": ", cell.discharge_rate,
                     ", \"asserts_deduped\": ", s.asserts_deduped,
                     ", \"solve_seconds\": ", s.solve_seconds,
                     ", \"seconds\": ", cell.report.total_seconds,
                     ", \"verdicts_agree\": ", sound ? "true" : "false", "}");
      first_record = false;
    }
  }
  json += "\n]\n";

  std::FILE* out = std::fopen("BENCH_solver.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_solver.json\n");
  }

  std::printf("expectation: byte-identical verdicts and counterexamples across all\n");
  std::printf("configs; strictly fewer Z3 checks with each layer enabled.\n");
  return sound ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunAblation(); }

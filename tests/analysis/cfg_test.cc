#include "src/analysis/cfg.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace dnsv {
namespace {

// A diamond with a dead tail:
//   entry -> (then | else) -> join -> exit ; orphan (unreachable)
class CfgTest : public ::testing::Test {
 protected:
  CfgTest() : module_(&types_) {
    fn_ = module_.AddFunction("diamond", {{"flag", types_.BoolType()}}, types_.IntType());
    IrBuilder b(&module_, fn_);
    entry_ = b.CreateBlock("entry");
    then_ = b.CreateBlock("then");
    else_ = b.CreateBlock("else");
    join_ = b.CreateBlock("join");
    orphan_ = b.CreateBlock("orphan");
    b.SetInsertPoint(entry_);
    b.Br(b.Param(0), then_, else_);
    b.SetInsertPoint(then_);
    b.Jmp(join_);
    b.SetInsertPoint(else_);
    b.Jmp(join_);
    b.SetInsertPoint(join_);
    b.Ret(b.Int(0));
    b.SetInsertPoint(orphan_);
    b.Ret(b.Int(1));
  }

  TypeTable types_;
  Module module_;
  Function* fn_ = nullptr;
  BlockId entry_, then_, else_, join_, orphan_;
};

TEST_F(CfgTest, SuccessorsFollowTerminators) {
  EXPECT_EQ(Successors(*fn_, entry_), (std::vector<BlockId>{then_, else_}));
  EXPECT_EQ(Successors(*fn_, then_), (std::vector<BlockId>{join_}));
  EXPECT_TRUE(Successors(*fn_, join_).empty());
}

TEST_F(CfgTest, PredecessorsInvertSuccessors) {
  std::vector<std::vector<BlockId>> preds = Predecessors(*fn_);
  EXPECT_TRUE(preds[entry_].empty());
  EXPECT_EQ(preds[join_], (std::vector<BlockId>{then_, else_}));
  EXPECT_TRUE(preds[orphan_].empty());
}

TEST_F(CfgTest, ReachabilityExcludesOrphan) {
  std::vector<bool> reachable = ReachableBlocks(*fn_);
  EXPECT_TRUE(reachable[entry_]);
  EXPECT_TRUE(reachable[join_]);
  EXPECT_FALSE(reachable[orphan_]);
}

TEST_F(CfgTest, ReversePostorderVisitsPredecessorsFirst) {
  std::vector<BlockId> rpo = ReversePostorder(*fn_);
  ASSERT_EQ(rpo.size(), 4u);  // orphan excluded
  EXPECT_EQ(rpo.front(), entry_);
  EXPECT_EQ(rpo.back(), join_);
  std::vector<int> pos(fn_->num_blocks(), -1);
  for (size_t i = 0; i < rpo.size(); ++i) pos[rpo[i]] = static_cast<int>(i);
  EXPECT_LT(pos[entry_], pos[then_]);
  EXPECT_LT(pos[entry_], pos[else_]);
  EXPECT_LT(pos[then_], pos[join_]);
  EXPECT_LT(pos[else_], pos[join_]);
}

TEST_F(CfgTest, DominatorTree) {
  DominatorTree dom(*fn_);
  EXPECT_EQ(dom.idom(entry_), entry_);
  EXPECT_EQ(dom.idom(then_), entry_);
  EXPECT_EQ(dom.idom(else_), entry_);
  // Neither branch dominates the join; only the entry does.
  EXPECT_EQ(dom.idom(join_), entry_);
  EXPECT_TRUE(dom.Dominates(entry_, join_));
  EXPECT_TRUE(dom.Dominates(join_, join_));
  EXPECT_FALSE(dom.Dominates(then_, join_));
  // Unreachable blocks have no dominator and dominate nothing.
  EXPECT_EQ(dom.idom(orphan_), kInvalidBlock);
  EXPECT_FALSE(dom.Dominates(entry_, orphan_));
  EXPECT_FALSE(dom.Dominates(orphan_, join_));
}

}  // namespace
}  // namespace dnsv

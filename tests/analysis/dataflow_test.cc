#include "src/analysis/dataflow.h"

#include <gtest/gtest.h>

#include <set>

#include "src/ir/builder.h"

namespace dnsv {
namespace {

// A domain that records which blocks each path has crossed: Transfer adds the
// current block, Join unions. Exercises edge emission, state adoption on
// first reach, and join-driven re-queuing without any IR semantics.
struct TraceDomain {
  using State = std::set<BlockId>;

  State EntryState(const Function&) { return {}; }

  void Transfer(const Function& fn, BlockId block, const State& in,
                std::vector<std::pair<BlockId, State>>* out) {
    State next = in;
    next.insert(block);
    const Instr& term = fn.instr(fn.block(block).instrs.back());
    for (BlockId target : {term.target_true, term.target_false}) {
      if (target != kInvalidBlock) out->emplace_back(target, next);
    }
  }

  bool Join(State* into, const State& incoming, const Function&, BlockId, int) {
    size_t before = into->size();
    into->insert(incoming.begin(), incoming.end());
    return into->size() != before;
  }
};

// A deliberately non-converging domain: the state strictly grows on every
// visit, so the solver must hit max_visits and report converged = false.
struct DivergingDomain {
  using State = int64_t;
  State EntryState(const Function&) { return 0; }
  void Transfer(const Function& fn, BlockId block, const State& in,
                std::vector<std::pair<BlockId, State>>* out) {
    const Instr& term = fn.instr(fn.block(block).instrs.back());
    for (BlockId target : {term.target_true, term.target_false}) {
      if (target != kInvalidBlock) out->emplace_back(target, in + 1);
    }
  }
  bool Join(State* into, const State& incoming, const Function&, BlockId, int) {
    if (incoming > *into) {
      *into = incoming;
      return true;
    }
    return false;
  }
};

// The same domain with a widening threshold: once a block has been visited
// enough times, Join clamps instead of growing — the solver converges.
struct WideningDomain : DivergingDomain {
  bool Join(State* into, const State& incoming, const Function&, BlockId, int visits) {
    int64_t next = visits >= 3 ? 1000 : incoming;  // widen: jump to the cap
    if (*into >= 1000) return false;  // widened: stable
    if (next > *into) {
      *into = next >= 1000 ? 1000 : next;
      return true;
    }
    return false;
  }
};

class DataflowTest : public ::testing::Test {
 protected:
  DataflowTest() : module_(&types_) {}

  // entry -> (then | else) -> join ; plus an unreachable orphan.
  Function* BuildDiamond() {
    Function* fn =
        module_.AddFunction("diamond", {{"flag", types_.BoolType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId then_bb = b.CreateBlock("then");
    BlockId else_bb = b.CreateBlock("else");
    BlockId join = b.CreateBlock("join");
    BlockId orphan = b.CreateBlock("orphan");
    b.SetInsertPoint(entry);
    b.Br(b.Param(0), then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.Jmp(join);
    b.SetInsertPoint(else_bb);
    b.Jmp(join);
    b.SetInsertPoint(join);
    b.Ret(b.Int(0));
    b.SetInsertPoint(orphan);
    b.Ret(b.Int(1));
    return fn;
  }

  // entry -> head; head -> (body | exit); body -> head.
  Function* BuildLoop() {
    Function* fn = module_.AddFunction("loop", {{"flag", types_.BoolType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId head = b.CreateBlock("head");
    BlockId body = b.CreateBlock("body");
    BlockId exit = b.CreateBlock("exit");
    b.SetInsertPoint(entry);
    b.Jmp(head);
    b.SetInsertPoint(head);
    b.Br(b.Param(0), body, exit);
    b.SetInsertPoint(body);
    b.Jmp(head);
    b.SetInsertPoint(exit);
    b.Ret(b.Int(0));
    return fn;
  }

  TypeTable types_;
  Module module_;
};

TEST_F(DataflowTest, DiamondReachesFixpointWithMergedStates) {
  Function* fn = BuildDiamond();
  TraceDomain domain;
  DataflowResult<TraceDomain> result = SolveForwardDataflow(*fn, &domain);
  EXPECT_TRUE(result.converged);
  ASSERT_TRUE(result.block_in[3].has_value());  // join
  // Both branch blocks flow into the join; the union carries all three.
  EXPECT_EQ(*result.block_in[3], (std::set<BlockId>{0, 1, 2}));
  // The orphan is never reached by any emitted edge.
  EXPECT_FALSE(result.block_in[4].has_value());
  // One transfer per reachable block: the diamond needs no iteration beyond
  // the join's two incoming edges.
  EXPECT_GE(result.transfers, 4);
}

TEST_F(DataflowTest, EntryStateSeedsTheEntryBlock) {
  Function* fn = BuildDiamond();
  TraceDomain domain;
  DataflowResult<TraceDomain> result = SolveForwardDataflow(*fn, &domain);
  ASSERT_TRUE(result.block_in[0].has_value());
  EXPECT_TRUE(result.block_in[0]->empty());
}

TEST_F(DataflowTest, NonConvergingDomainBailsOut) {
  Function* fn = BuildLoop();
  DivergingDomain domain;
  DataflowResult<DivergingDomain> result = SolveForwardDataflow(*fn, &domain, 8);
  EXPECT_FALSE(result.converged);
}

TEST_F(DataflowTest, WideningDomainConverges) {
  Function* fn = BuildLoop();
  WideningDomain domain;
  DataflowResult<WideningDomain> result = SolveForwardDataflow(*fn, &domain);
  EXPECT_TRUE(result.converged);
  ASSERT_TRUE(result.block_in[1].has_value());  // head
  EXPECT_EQ(*result.block_in[1], 1000);         // the widened cap, not a runaway count
}

}  // namespace
}  // namespace dnsv

#include "src/analysis/lint.h"

#include <gtest/gtest.h>

#include "src/engine/sources/sources.h"

namespace dnsv {
namespace {

std::vector<LintDiagnostic> LintOk(const std::string& source) {
  Result<std::vector<LintDiagnostic>> result = LintMiniGoSource("test.mg", source);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.ok() ? result.value() : std::vector<LintDiagnostic>{};
}

bool HasCategory(const std::vector<LintDiagnostic>& diags, const std::string& category) {
  for (const LintDiagnostic& diag : diags) {
    if (diag.category == category) return true;
  }
  return false;
}

TEST(Lint, UseBeforeAssignOnBranchyPath) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f(flag bool) int {
  var x int
  if flag {
    x = 1
  }
  return x
}
)mg");
  EXPECT_TRUE(HasCategory(diags, "use-before-assign"));
}

TEST(Lint, DefiniteAssignmentOnBothBranchesIsClean) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f(flag bool) int {
  var x int
  if flag {
    x = 1
  } else {
    x = 2
  }
  return x
}
)mg");
  EXPECT_FALSE(HasCategory(diags, "use-before-assign"));
}

TEST(Lint, TerminatingBranchCountsAsAssigned) {
  // The then-branch returns, so only the else-path reaches the read — and
  // that path assigned.
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f(flag bool) int {
  var x int
  if flag {
    return 0
  } else {
    x = 2
  }
  return x
}
)mg");
  EXPECT_FALSE(HasCategory(diags, "use-before-assign"));
}

TEST(Lint, ListLocalsExemptFromUseBeforeAssign) {
  // A []int zero value is well-defined in MiniGo (as in Go): reading it
  // without an explicit initializer is idiomatic, not a bug.
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f() int {
  var xs []int
  return len(xs)
}
)mg");
  EXPECT_FALSE(HasCategory(diags, "use-before-assign"));
}

TEST(Lint, DeadStatementAfterReturn) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f() int {
  return 1
  var x int
  x = 2
  return x
}
)mg");
  EXPECT_TRUE(HasCategory(diags, "dead-statement"));
}

TEST(Lint, DeadStatementAfterFullyTerminatingIf) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f(flag bool) int {
  if flag {
    return 1
  } else {
    return 2
  }
  return 3
}
)mg");
  EXPECT_TRUE(HasCategory(diags, "dead-statement"));
}

TEST(Lint, UnusedLocal) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f() int {
  var unusedValue int
  unusedValue = 3
  return 0
}
)mg");
  EXPECT_TRUE(HasCategory(diags, "unused-local"));
}

TEST(Lint, ConstantConditionOnLiterals) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f() int {
  if 1 < 2 {
    return 1
  }
  return 0
}
)mg");
  EXPECT_TRUE(HasCategory(diags, "constant-condition"));
}

TEST(Lint, NamedConstantConditionsExempt) {
  // `if featureX == 1` is how engine versions configure themselves — the
  // MiniGo analogue of `if debug { ... }`. Named constants must not trip the
  // constant-condition lint even though they fold.
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
const featureX = 1

func f() int {
  if featureX == 1 {
    return 1
  }
  return 0
}
)mg");
  EXPECT_FALSE(HasCategory(diags, "constant-condition"));
}

TEST(Lint, DiagnosticRenderingIsStable) {
  std::vector<LintDiagnostic> diags = LintOk(R"mg(
func f() int {
  var unusedValue int
  unusedValue = 3
  return 0
}
)mg");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].ToString(),
            "test.mg:3: [unused-local] local 'unusedValue' declared and not used (in f)");
}

TEST(Lint, EmbeddedEngineSourcesAreClean) {
  // The ci/check.sh `dnsv-lint --werror` gate, as a unit test: every engine
  // version's full compilation unit lints clean.
  for (EngineVersion version : AllEngineVersions()) {
    Result<std::vector<LintDiagnostic>> diags = LintMiniGoSources(EngineSources(version));
    ASSERT_TRUE(diags.ok()) << diags.error();
    for (const LintDiagnostic& diag : diags.value()) {
      ADD_FAILURE() << EngineVersionName(version) << ": " << diag.ToString();
    }
  }
}

}  // namespace
}  // namespace dnsv

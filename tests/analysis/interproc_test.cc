// Unit tests for the interprocedural analysis layer on hand-written AbsIR:
// the call graph (SCCs, reachability, unknown callees), the bottom-up callee
// summaries, SCCP branch folding (literal and summary-driven), the Andersen
// points-to solution, and the escape classification its consumers act on.
//
// The engine-scale soundness gates live next door in
// prune_differential_test.cc; here every property is checked against a module
// small enough to verify the expected answer by eye.
#include <gtest/gtest.h>

#include "src/analysis/alias.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/escape.h"
#include "src/analysis/sccp.h"
#include "src/analysis/summary.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/validate.h"

namespace dnsv {
namespace {

class InterprocTest : public ::testing::Test {
 protected:
  InterprocTest() : module_(&types_) {
    types_.DefineStruct("Node", {{"val", types_.IntType()},
                                 {"next", types_.PtrTo(types_.StructType("Node"))}});
    node_ty_ = types_.StructType("Node");
    node_ptr_ty_ = types_.PtrTo(node_ty_);
  }

  // leaf() int { return 7 } — pure, panic-free, constant return.
  Function* BuildLeaf() {
    Function* fn = module_.AddFunction("leaf", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Int(7));
    return fn;
  }

  // mid() int { return leaf() }
  Function* BuildMid() {
    Function* fn = module_.AddFunction("mid", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Call("leaf", {}, types_.IntType()));
    return fn;
  }

  // main() int { listEq(...); return mid() } — the intrinsic must stay a
  // leaf flag, not a graph node.
  Function* BuildMain() {
    Function* fn = module_.AddFunction("main", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    Operand xs = b.ListNew(types_.IntType());
    Operand ys = b.ListNew(types_.IntType());
    b.Call("listEq", {xs, ys}, types_.BoolType());
    b.Ret(b.Call("mid", {}, types_.IntType()));
    return fn;
  }

  // selfrec(n int) int { return selfrec(n) } — a non-trivial SCC; the
  // summary layer must stay pessimistic on it.
  Function* BuildSelfRec() {
    Function* fn =
        module_.AddFunction("selfrec", {{"n", types_.IntType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Call("selfrec", {b.Param(0)}, types_.IntType()));
    return fn;
  }

  // storeParam(p *int) { *p = 1 } — writes caller memory, so impure.
  Function* BuildStoreParam() {
    Function* fn = module_.AddFunction(
        "storeParam", {{"p", types_.PtrTo(types_.IntType())}}, types_.VoidType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Store(b.Param(0), b.Int(1));
    b.RetVoid();
    return fn;
  }

  // panicky(n int) int { if n < 0 { panic } return n }
  Function* BuildPanicky() {
    Function* fn =
        module_.AddFunction("panicky", {{"n", types_.IntType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId ok = b.CreateBlock("ok");
    b.SetInsertPoint(entry);
    Operand neg = b.BinaryOp(BinOp::kLt, b.Param(0), b.Int(0), types_.BoolType());
    b.Br(neg, b.GetPanicBlock("negative"), ok);
    b.SetInsertPoint(ok);
    b.Ret(b.Param(0));
    return fn;
  }

  // makeNode() *Node { return new(Node) } — non-nil return; the allocation
  // escapes through the return channel.
  Function* BuildMakeNode() {
    Function* fn = module_.AddFunction("makeNode", {}, node_ptr_ty_);
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    returned_new_ = b.NewObject(node_ty_);
    b.Ret(returned_new_);
    return fn;
  }

  // localSum() int — the frontend shape for `n := new(Node)` used purely
  // within the frame: the object sits in an own stack slot, its field is
  // written and read back, and nothing else sees it. Provably local.
  Function* BuildLocalSum() {
    Function* fn = module_.AddFunction("localSum", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    Operand slot = b.Alloca(node_ptr_ty_);
    local_new_ = b.NewObject(node_ty_);
    b.Store(slot, local_new_);
    Operand p = b.Load(slot);
    Operand val_addr = b.Gep(p, {b.Int(0)}, types_.IntType());
    b.Store(val_addr, b.Int(5));
    b.Ret(b.Load(val_addr));
    slot_alloca_ = slot;
    return fn;
  }

  // publish() int { a := new(Node); b := new(Node); b.next = a } — `a` is
  // stored into another object's contents and escapes; `b` itself stays
  // confined to the frame.
  Function* BuildPublish() {
    Function* fn = module_.AddFunction("publish", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    published_new_ = b.NewObject(node_ty_);
    container_new_ = b.NewObject(node_ty_);
    Operand next_addr = b.Gep(container_new_, {b.Int(1)}, node_ptr_ty_);
    b.Store(next_addr, published_new_);
    b.Ret(b.Int(0));
    return fn;
  }

  // passer() int { taker(new(Node)) } — handing the pointer to any callee
  // (analyzed or not) forfeits locality.
  Function* BuildTakerAndPasser() {
    Function* taker =
        module_.AddFunction("taker", {{"p", node_ptr_ty_}}, types_.IntType());
    {
      IrBuilder b(&module_, taker);
      b.SetInsertPoint(b.CreateBlock("entry"));
      b.Ret(b.Int(0));
    }
    Function* fn = module_.AddFunction("passer", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    passed_new_ = b.NewObject(node_ty_);
    b.Ret(b.Call("taker", {passed_new_}, types_.IntType()));
    return fn;
  }

  TypeTable types_;
  Module module_;
  Type node_ty_, node_ptr_ty_;
  Operand returned_new_, local_new_, slot_alloca_, published_new_, container_new_,
      passed_new_;
};

// --- call graph ---

TEST_F(InterprocTest, CallGraphEdgesAndIntrinsics) {
  BuildLeaf();
  BuildMid();
  Function* main_fn = BuildMain();
  ASSERT_TRUE(ValidateFunction(module_, *main_fn).ok());

  CallGraph graph = CallGraph::Build(module_);
  ASSERT_EQ(graph.size(), 3u);
  int leaf = graph.NodeOf("leaf");
  int mid = graph.NodeOf("mid");
  int main_node = graph.NodeOf("main");
  ASSERT_GE(leaf, 0);
  ASSERT_GE(mid, 0);
  ASSERT_GE(main_node, 0);
  // The intrinsic is not a node and not an unknown callee.
  EXPECT_EQ(graph.NodeOf("listEq"), -1);
  EXPECT_FALSE(graph.HasUnknownCallee(main_node));

  EXPECT_EQ(graph.Callees(main_node), std::set<int>{mid});
  EXPECT_EQ(graph.Callees(mid), std::set<int>{leaf});
  EXPECT_EQ(graph.Callers(leaf), std::set<int>{mid});
  EXPECT_TRUE(graph.Callees(leaf).empty());
}

TEST_F(InterprocTest, CallGraphSccOrderIsBottomUp) {
  BuildLeaf();
  BuildMid();
  Function* main_fn = BuildMain();
  Function* rec = BuildSelfRec();
  (void)main_fn;
  (void)rec;

  CallGraph graph = CallGraph::Build(module_);
  int leaf = graph.NodeOf("leaf");
  int mid = graph.NodeOf("mid");
  int main_node = graph.NodeOf("main");
  int selfrec = graph.NodeOf("selfrec");
  // Callee component ids never exceed caller component ids.
  EXPECT_LE(graph.SccOf(leaf), graph.SccOf(mid));
  EXPECT_LE(graph.SccOf(mid), graph.SccOf(main_node));
  // A self-call makes the component non-trivial; straight-line chains stay
  // trivial.
  EXPECT_FALSE(graph.SccIsTrivial(graph.SccOf(selfrec)));
  EXPECT_TRUE(graph.SccIsTrivial(graph.SccOf(leaf)));
  // Every node appears in exactly one bottom-up component.
  size_t members = 0;
  for (const std::vector<int>& scc : graph.SccsBottomUp()) members += scc.size();
  EXPECT_EQ(members, graph.size());
}

TEST_F(InterprocTest, CallGraphReachabilityAndUnknownCallees) {
  BuildLeaf();
  BuildMid();
  BuildMain();
  Function* ext = module_.AddFunction("externCaller", {}, types_.IntType());
  {
    IrBuilder b(&module_, ext);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Call("mystery", {}, types_.IntType()));
  }

  CallGraph graph = CallGraph::Build(module_);
  EXPECT_TRUE(graph.HasUnknownCallee(graph.NodeOf("externCaller")));
  EXPECT_FALSE(graph.HasUnknownCallee(graph.NodeOf("mid")));

  std::set<int> reach = graph.ReachableFrom({"main"});
  std::set<int> want = {graph.NodeOf("main"), graph.NodeOf("mid"), graph.NodeOf("leaf")};
  EXPECT_EQ(reach, want);
  // Unknown root names are ignored rather than fatal.
  EXPECT_TRUE(graph.ReachableFrom({"noSuchFn"}).empty());
}

// --- summaries ---

TEST_F(InterprocTest, SummariesClassifyPurityPanicAndConstants) {
  BuildLeaf();
  BuildMid();
  BuildMain();
  BuildStoreParam();
  BuildPanicky();
  BuildSelfRec();

  CallGraph graph = CallGraph::Build(module_);
  AnalysisStats stats;
  InterprocContext ctx = ComputeInterprocContext(module_, graph, {"main"}, &stats);

  const CalleeSummary* leaf = ctx.SummaryFor("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->analyzed);
  EXPECT_TRUE(leaf->pure);
  EXPECT_TRUE(leaf->heap_independent);
  EXPECT_FALSE(leaf->may_panic);
  ASSERT_TRUE(leaf->return_range.IsConst());
  EXPECT_EQ(leaf->return_range.lo, 7);

  // The constant flows through the call: mid() inherits leaf's return fact.
  const CalleeSummary* mid = ctx.SummaryFor("mid");
  ASSERT_NE(mid, nullptr);
  EXPECT_TRUE(mid->analyzed);
  ASSERT_TRUE(mid->return_range.IsConst());
  EXPECT_EQ(mid->return_range.lo, 7);
  EXPECT_FALSE(mid->may_panic);

  const CalleeSummary* store_param = ctx.SummaryFor("storeParam");
  ASSERT_NE(store_param, nullptr);
  EXPECT_FALSE(store_param->pure) << "writes through a caller pointer";

  const CalleeSummary* panicky = ctx.SummaryFor("panicky");
  ASSERT_NE(panicky, nullptr);
  EXPECT_TRUE(panicky->may_panic);

  // Recursive SCCs get the pessimistic default.
  const CalleeSummary* selfrec = ctx.SummaryFor("selfrec");
  ASSERT_NE(selfrec, nullptr);
  EXPECT_FALSE(selfrec->analyzed);
  EXPECT_TRUE(selfrec->may_panic);

  EXPECT_EQ(stats.functions, 6);
  EXPECT_GE(stats.pure_functions, 3);  // leaf, mid, main at least
  EXPECT_GE(stats.const_returns, 2);   // leaf and mid
}

TEST_F(InterprocTest, SummaryReturnsNonNullForFreshAllocation) {
  BuildMakeNode();
  CallGraph graph = CallGraph::Build(module_);
  InterprocContext ctx = ComputeInterprocContext(module_, graph, {}, nullptr);
  const CalleeSummary* make_node = ctx.SummaryFor("makeNode");
  ASSERT_NE(make_node, nullptr);
  EXPECT_TRUE(make_node->analyzed);
  EXPECT_TRUE(make_node->returns_nonnull);
}

// --- SCCP ---

TEST_F(InterprocTest, SccpFoldsLiteralBranch) {
  Function* fn = module_.AddFunction("litbr", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  BlockId then_bb = b.CreateBlock("then");
  BlockId else_bb = b.CreateBlock("else");
  b.SetInsertPoint(entry);
  Operand c = b.BinaryOp(BinOp::kLt, b.Int(1), b.Int(2), types_.BoolType());
  b.Br(c, then_bb, else_bb);
  b.SetInsertPoint(then_bb);
  b.Ret(b.Int(1));
  b.SetInsertPoint(else_bb);
  b.Ret(b.Int(0));

  SccpResult result = RunSccp(fn, nullptr);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.branches_folded, 1);
  std::string after = PrintFunction(module_, *fn);
  EXPECT_NE(after.find("jmp"), std::string::npos) << after;
}

TEST_F(InterprocTest, SccpFoldsGuardThroughCalleeSummaryOnly) {
  BuildLeaf();
  auto build_guard = [&](const std::string& name) {
    Function* fn = module_.AddFunction(name, {}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId then_bb = b.CreateBlock("then");
    BlockId else_bb = b.CreateBlock("else");
    b.SetInsertPoint(entry);
    Operand x = b.Call("leaf", {}, types_.IntType());
    Operand c = b.BinaryOp(BinOp::kEq, x, b.Int(7), types_.BoolType());
    b.Br(c, then_bb, else_bb);
    b.SetInsertPoint(then_bb);
    b.Ret(b.Int(1));
    b.SetInsertPoint(else_bb);
    b.Ret(b.Int(0));
    return fn;
  };
  Function* without_ctx = build_guard("guardA");
  Function* with_ctx = build_guard("guardB");

  // Without summaries the call result is overdefined: nothing folds.
  SccpResult bare = RunSccp(without_ctx, nullptr);
  EXPECT_EQ(bare.branches_folded, 0);
  EXPECT_FALSE(bare.changed);

  CallGraph graph = CallGraph::Build(module_);
  InterprocContext ctx = ComputeInterprocContext(module_, graph, {}, nullptr);
  SccpResult summarized = RunSccp(with_ctx, &ctx);
  EXPECT_EQ(summarized.branches_folded, 1);
  std::string after = PrintFunction(module_, *with_ctx);
  EXPECT_NE(after.find("jmp"), std::string::npos) << after;
}

// --- points-to ---

TEST_F(InterprocTest, PointsToTracksStoresIntoObjectContents) {
  BuildPublish();
  CallGraph graph = CallGraph::Build(module_);
  AnalysisStats stats;
  PointsTo pts = PointsTo::Solve(module_, graph, {}, &stats);

  int published = pts.ObjectOf("publish", published_new_.reg);
  int container = pts.ObjectOf("publish", container_new_.reg);
  ASSERT_GE(published, 0);
  ASSERT_GE(container, 0);
  EXPECT_NE(published, container);
  EXPECT_FALSE(pts.ObjectIsStackSlot(published));

  // b.next = a: `a` lands in b's (field-insensitive) contents.
  EXPECT_TRUE(pts.Contents(container).count(published) > 0);
  EXPECT_FALSE(pts.Contents(published).count(container) > 0);
  // The register holding the kNewObject result points at its own site.
  EXPECT_TRUE(pts.RegPointsTo("publish", published_new_.reg).count(published) > 0);
}

TEST_F(InterprocTest, PointsToEntryParamsAndAllocaSites) {
  BuildLocalSum();
  Function* entry_fn =
      module_.AddFunction("driverEntry", {{"p", node_ptr_ty_}}, types_.IntType());
  {
    IrBuilder b(&module_, entry_fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Int(0));
  }
  CallGraph graph = CallGraph::Build(module_);
  PointsTo pts = PointsTo::Solve(module_, graph, {"driverEntry"}, nullptr);

  // Entry-point parameters start at the unknown object (driver-owned
  // memory); non-entry params do not.
  EXPECT_TRUE(
      pts.ParamPointsTo("driverEntry", 0).count(PointsTo::kUnknownObject) > 0);

  int slot = pts.ObjectOf("localSum", slot_alloca_.reg);
  ASSERT_GE(slot, 0);
  EXPECT_TRUE(pts.ObjectIsStackSlot(slot));
  // Non-site instructions are not objects (the store following the two
  // allocation sites).
  EXPECT_EQ(pts.ObjectOf("localSum", local_new_.reg + 1), -1);
}

TEST_F(InterprocTest, MayAliasRespectsUnknownAndDisjointness) {
  std::set<int> unknown = {PointsTo::kUnknownObject};
  std::set<int> one = {1};
  std::set<int> two = {2};
  std::set<int> none;
  EXPECT_TRUE(PointsTo::MayAlias(unknown, one));
  EXPECT_TRUE(PointsTo::MayAlias(one, one));
  EXPECT_FALSE(PointsTo::MayAlias(one, two));
  EXPECT_FALSE(PointsTo::MayAlias(none, one));
  EXPECT_FALSE(PointsTo::MayAlias(none, unknown));
}

// --- escape ---

TEST_F(InterprocTest, EscapeClassifiesAllFourChannels) {
  BuildLocalSum();        // confined to the frame -> local
  BuildMakeNode();        // returned -> escapes
  BuildPublish();         // stored into another object -> escapes
  BuildTakerAndPasser();  // passed to a callee -> escapes

  CallGraph graph = CallGraph::Build(module_);
  PointsTo pts = PointsTo::Solve(module_, graph, {}, nullptr);
  AnalysisStats stats;
  EscapeResult escapes = ComputeEscapes(module_, graph, pts, &stats);

  EXPECT_TRUE(escapes.IsLocal("localSum", local_new_.reg));
  EXPECT_FALSE(escapes.IsLocal("makeNode", returned_new_.reg));
  EXPECT_FALSE(escapes.IsLocal("publish", published_new_.reg));
  EXPECT_FALSE(escapes.IsLocal("passer", passed_new_.reg));
  // The container in publish() is itself never stored / returned / passed.
  EXPECT_TRUE(escapes.IsLocal("publish", container_new_.reg));

  EXPECT_EQ(escapes.TotalLocal(), 2);
  EXPECT_EQ(stats.protected_allocs, 2);
  EXPECT_GE(stats.escape_seconds, 0.0);
}

}  // namespace
}  // namespace dnsv

#include "src/analysis/interval.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(Interval, ConstructorsAndPredicates) {
  EXPECT_TRUE(Interval::Top().IsTop());
  EXPECT_FALSE(Interval::Top().IsConst());
  Interval c = Interval::Const(7);
  EXPECT_TRUE(c.IsConst());
  EXPECT_TRUE(c.Contains(7));
  EXPECT_FALSE(c.Contains(8));
  Interval r = Interval::Range(-2, 5);
  EXPECT_FALSE(r.IsConst());
  EXPECT_TRUE(r.Contains(-2));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_FALSE(r.Contains(6));
}

TEST(Interval, ExtremesAbsorbIntoInfinity) {
  // The sentinel convention: INT64_MIN / INT64_MAX are the infinities, so a
  // "constant" at either extreme is not Const — it reads as unbounded.
  EXPECT_FALSE(Interval::Const(Interval::kPosInf).IsConst());
  EXPECT_FALSE(Interval::Const(Interval::kNegInf).IsConst());
}

TEST(Interval, JoinIsLeastUpperBound) {
  Interval j = Join(Interval::Range(0, 3), Interval::Range(5, 9));
  EXPECT_EQ(j, Interval::Range(0, 9));
  EXPECT_EQ(Join(Interval::Top(), Interval::Const(1)), Interval::Top());
  EXPECT_EQ(Join(Interval::Const(4), Interval::Const(4)), Interval::Const(4));
}

TEST(Interval, MeetEmptyIsNullopt) {
  EXPECT_EQ(Meet(Interval::Range(0, 3), Interval::Range(4, 9)), std::nullopt);
  std::optional<Interval> m = Meet(Interval::Range(0, 5), Interval::Range(3, 9));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, Interval::Range(3, 5));
  // Touching endpoints meet to a single point, not empty.
  std::optional<Interval> point = Meet(Interval::Range(0, 4), Interval::Range(4, 9));
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(*point, Interval::Const(4));
}

TEST(Interval, WidenJumpsMovedBoundsToInfinity) {
  Interval prev = Interval::Range(0, 3);
  // hi moved: widen to +inf; lo stable: keep it.
  EXPECT_EQ(Widen(prev, Interval::Range(0, 4)), (Interval{0, Interval::kPosInf}));
  // lo moved: widen to -inf.
  EXPECT_EQ(Widen(prev, Interval::Range(-1, 3)), (Interval{Interval::kNegInf, 3}));
  // Nothing moved: fixpoint.
  EXPECT_EQ(Widen(prev, Interval::Range(1, 2)), prev);
}

TEST(Interval, ArithmeticSaturates) {
  // Addition near INT64_MAX saturates to the +inf sentinel, never wraps.
  Interval near_max = Interval::Range(Interval::kPosInf - 2, Interval::kPosInf - 1);
  Interval sum = IntervalAdd(near_max, Interval::Const(5));
  EXPECT_EQ(sum.hi, Interval::kPosInf);
  // An unbounded end stays unbounded through arithmetic.
  Interval top_plus = IntervalAdd(Interval::Top(), Interval::Const(1));
  EXPECT_TRUE(top_plus.IsTop());
  EXPECT_EQ(IntervalSub(Interval::Const(3), Interval::Const(5)), Interval::Const(-2));
  EXPECT_EQ(IntervalMul(Interval::Range(-2, 3), Interval::Const(-4)),
            Interval::Range(-12, 8));
  EXPECT_EQ(IntervalNeg(Interval::Range(-2, 7)), Interval::Range(-7, 2));
  // Negating an unbounded end flips it to the other infinity.
  EXPECT_EQ(IntervalNeg(Interval{Interval::kNegInf, 3}), (Interval{-3, Interval::kPosInf}));
}

TEST(Interval, ProvableComparisons) {
  EXPECT_TRUE(ProvablyLt(Interval::Range(0, 3), Interval::Range(4, 9)));
  EXPECT_FALSE(ProvablyLt(Interval::Range(0, 4), Interval::Range(4, 9)));
  EXPECT_TRUE(ProvablyLe(Interval::Range(0, 4), Interval::Range(4, 9)));
  EXPECT_TRUE(ProvablyNe(Interval::Range(5, 9), Interval::Range(0, 3)));
  EXPECT_FALSE(ProvablyNe(Interval::Range(0, 5), Interval::Range(3, 9)));
  // Unbounded ends never prove anything: the sentinels absorb the concrete
  // extremes, so [x, +inf] might actually contain INT64_MAX.
  EXPECT_FALSE(ProvablyLt(Interval::Top(), Interval::Top()));
  EXPECT_FALSE(ProvablyLe(Interval{0, Interval::kPosInf}, Interval{5, Interval::kPosInf}));
}

}  // namespace
}  // namespace dnsv

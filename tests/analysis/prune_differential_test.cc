// Soundness gate for the pruning pass, from two independent angles:
//
//  1. Concrete differential: for every engine version, a pruned module must
//     behave byte-identically to the unpruned one under the interpreter —
//     same responses, same panics — across the example zones' probe matrix.
//  2. Verifier differential: the staged pipeline with pruning on must reach
//     the same verdict and the same issue list (byte-identical) as with
//     pruning off, on the bug-hunt zone where the Table-2 bugs surface.
//
// Plus the profit check: on the golden engine, pruning must strictly reduce
// exploration solver checks and report paths_pruned > 0.
//
// The interprocedural mode (PruneOptions::interproc) gets the same treatment
// against two baselines: the unpruned module (concrete differential) and the
// PR-2 intraprocedural pruner (verdict differential + the strictly-more-
// guards dominance check the analysis suite exists for).
#include <gtest/gtest.h>

#include "src/analysis/prune.h"
#include "src/dns/example_zones.h"
#include "src/dns/heap.h"
#include "src/dnsv/pipeline.h"
#include "src/engine/engine.h"
#include "src/engine/sources/sources.h"
#include "src/interp/interp.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

// A server-shaped harness over an explicitly owned (possibly pruned) engine:
// AuthoritativeServer always uses the pristine cached module, so the pruned
// side rebuilds the same glue against its own compiled instance.
class ModuleHarness {
 public:
  ModuleHarness(std::unique_ptr<CompiledEngine> engine, const ZoneConfig& canonical_zone)
      : engine_(std::move(engine)) {
    image_ = BuildHeapImage(canonical_zone, &interner_, engine_->types(), &memory_);
  }

  QueryResult Resolve(const DnsName& qname, RrType qtype) {
    return Run(engine_->resolve_fn(),
               {image_.apex_ptr, image_.origin_labels, QnameValue(qname, &interner_),
                Value::Int(static_cast<int64_t>(qtype))});
  }

  QueryResult Spec(const DnsName& qname, RrType qtype) {
    return Run(engine_->rrlookup_fn(),
               {image_.zone_rrs, image_.origin_labels, QnameValue(qname, &interner_),
                Value::Int(static_cast<int64_t>(qtype))});
  }

 private:
  QueryResult Run(const Function& fn, std::vector<Value> args) {
    Interpreter interp(&engine_->module(), &memory_);
    ExecOutcome outcome = interp.Run(fn, std::move(args));
    QueryResult result;
    if (!outcome.ok()) {
      result.panicked = true;
      result.panic_message = outcome.kind == ExecOutcome::Kind::kStepLimit
                                 ? "step limit exceeded"
                                 : outcome.panic_message;
      return result;
    }
    result.response = DecodeResponse(outcome.return_value, memory_, interner_,
                                     engine_->types());
    return result;
  }

  std::unique_ptr<CompiledEngine> engine_;
  LabelInterner interner_;
  ConcreteMemory memory_;
  HeapImage image_;
};

// The interprocedural configuration the verifier's pipeline uses: SCCP +
// summaries + escape facts, rooted at what the drivers actually invoke.
PruneOptions InterprocOptions() {
  PruneOptions options;
  options.interproc = true;
  options.entry_points = EngineAnalysisRoots();
  return options;
}

// Runs the probe matrix on baseline vs pruned; returns the probe count.
int ExpectPrunedMatchesBaseline(EngineVersion version, const ZoneConfig& zone,
                                uint64_t seed, const PruneOptions& options = {}) {
  ZoneConfig canonical = CanonicalizeZone(zone).value();
  ModuleHarness baseline(CompiledEngine::Compile(version), canonical);

  std::unique_ptr<CompiledEngine> pruned_engine = CompiledEngine::Compile(version);
  PruneStats stats = PruneModule(&pruned_engine->mutable_module(), options, nullptr);
  EXPECT_GT(stats.panics_discharged, 0) << EngineVersionName(version);
  ModuleHarness pruned(std::move(pruned_engine), canonical);

  int probes = 0;
  for (const DnsName& qname : InterestingQueryNames(canonical, seed)) {
    for (RrType qtype : AllQueryTypes()) {
      for (bool spec : {false, true}) {
        QueryResult base = spec ? baseline.Spec(qname, qtype) : baseline.Resolve(qname, qtype);
        QueryResult pr = spec ? pruned.Spec(qname, qtype) : pruned.Resolve(qname, qtype);
        EXPECT_EQ(base.panicked, pr.panicked)
            << EngineVersionName(version) << (spec ? " spec " : " engine ")
            << qname.ToString() << " " << RrTypeName(qtype);
        if (base.panicked && pr.panicked) {
          EXPECT_EQ(base.panic_message, pr.panic_message);
        } else if (!base.panicked && !pr.panicked) {
          EXPECT_EQ(base.response, pr.response)
              << EngineVersionName(version) << (spec ? " spec " : " engine ")
              << qname.ToString() << " " << RrTypeName(qtype);
        }
        ++probes;
      }
    }
  }
  return probes;
}

std::string VersionTestName(const ::testing::TestParamInfo<EngineVersion>& param_info) {
  std::string name = EngineVersionName(param_info.param);
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

class PrunedInterpreterDifferential : public ::testing::TestWithParam<EngineVersion> {};

TEST_P(PrunedInterpreterDifferential, ProbeMatrixIdentical) {
  EXPECT_GT(ExpectPrunedMatchesBaseline(GetParam(), Figure11Zone(), 11), 100);
  EXPECT_GT(ExpectPrunedMatchesBaseline(GetParam(), BugHuntZone(), 13), 100);
}

INSTANTIATE_TEST_SUITE_P(Versions, PrunedInterpreterDifferential,
                         ::testing::ValuesIn(AllEngineVersions()), VersionTestName);

// The interprocedurally pruned module (SCCP + summaries + escape facts) must
// also be observably identical to the unpruned one under the interpreter.
class InterprocPrunedInterpreterDifferential
    : public ::testing::TestWithParam<EngineVersion> {};

TEST_P(InterprocPrunedInterpreterDifferential, ProbeMatrixIdentical) {
  EXPECT_GT(ExpectPrunedMatchesBaseline(GetParam(), Figure11Zone(), 11, InterprocOptions()),
            100);
  EXPECT_GT(ExpectPrunedMatchesBaseline(GetParam(), BugHuntZone(), 13, InterprocOptions()),
            100);
}

INSTANTIATE_TEST_SUITE_P(Versions, InterprocPrunedInterpreterDifferential,
                         ::testing::ValuesIn(AllEngineVersions()), VersionTestName);

std::string IssueDigest(const VerificationReport& report) {
  std::string digest;
  for (const VerificationIssue& issue : report.issues) {
    digest += issue.ToString();
  }
  return digest;
}

class PrunedVerifierDifferential : public ::testing::TestWithParam<EngineVersion> {};

// The Table-2 verdicts — buggy versions stay buggy with the exact same
// counterexamples, the golden version stays verified.
TEST_P(PrunedVerifierDifferential, VerdictAndIssuesUnchangedOnBugHuntZone) {
  VerifyContext context;
  VerifyOptions off;
  off.prune = false;
  VerifyOptions on;
  on.prune = true;
  VerificationReport base = RunVerifyPipeline(&context, GetParam(), BugHuntZone(), off);
  VerificationReport pruned = RunVerifyPipeline(&context, GetParam(), BugHuntZone(), on);
  ASSERT_FALSE(base.aborted) << base.abort_reason;
  ASSERT_FALSE(pruned.aborted) << pruned.abort_reason;
  EXPECT_EQ(base.verified, pruned.verified);
  EXPECT_EQ(IssueDigest(base), IssueDigest(pruned));
  EXPECT_EQ(base.engine_paths, pruned.engine_paths)
      << "discharged guards were never feasible, so path counts must match";
  EXPECT_TRUE(pruned.pruned);
  EXPECT_GT(pruned.panics_discharged, 0);
}

INSTANTIATE_TEST_SUITE_P(Versions, PrunedVerifierDifferential,
                         ::testing::ValuesIn(AllEngineVersions()), VersionTestName);

// Interprocedural vs intraprocedural pruning under the full pipeline: the
// extra facts may only remove infeasible paths, so verdicts and issue lists
// stay byte-identical while the analysis stage shows up in the report.
class InterprocVerifierDifferential : public ::testing::TestWithParam<EngineVersion> {};

TEST_P(InterprocVerifierDifferential, VerdictAndIssuesMatchBaselinePruner) {
  VerifyContext context;
  VerifyOptions baseline;
  baseline.prune = true;
  baseline.prune_interproc = false;
  VerifyOptions interproc;
  interproc.prune = true;
  interproc.prune_interproc = true;
  VerificationReport base = RunVerifyPipeline(&context, GetParam(), BugHuntZone(), baseline);
  VerificationReport inter = RunVerifyPipeline(&context, GetParam(), BugHuntZone(), interproc);
  ASSERT_FALSE(base.aborted) << base.abort_reason;
  ASSERT_FALSE(inter.aborted) << inter.abort_reason;
  EXPECT_EQ(base.verified, inter.verified);
  EXPECT_EQ(IssueDigest(base), IssueDigest(inter));
  // Dominance: the analysis suite never discharges less than the baseline
  // and never leaves the executor more solver work.
  EXPECT_GE(inter.panics_discharged, base.panics_discharged);
  EXPECT_LE(inter.solver_checks, base.solver_checks);
  // The per-pass analysis stats are reported only in interproc mode.
  EXPECT_TRUE(base.analysis.IsZero());
  EXPECT_FALSE(inter.analysis.IsZero());
  EXPECT_GT(inter.analysis.sccp_branches_folded, 0)
      << "feature gates must fold on every version";
}

INSTANTIATE_TEST_SUITE_P(Versions, InterprocVerifierDifferential,
                         ::testing::ValuesIn(AllEngineVersions()), VersionTestName);

// The acceptance criterion of the analysis suite, measured directly on the
// prune stats without the pipeline: strictly more guards discharged than the
// PR-2 baseline on at least three of the six versions (in practice: all six),
// never fewer on any.
TEST(InterprocPrune, DischargesStrictlyMoreGuardsThanBaseline) {
  int strictly_more = 0;
  for (EngineVersion version : AllEngineVersions()) {
    std::unique_ptr<CompiledEngine> base_engine = CompiledEngine::Compile(version);
    PruneStats base = PruneModule(&base_engine->mutable_module());

    std::unique_ptr<CompiledEngine> inter_engine = CompiledEngine::Compile(version);
    AnalysisStats analysis;
    PruneStats inter =
        PruneModule(&inter_engine->mutable_module(), InterprocOptions(), &analysis);

    EXPECT_GE(inter.panics_discharged, base.panics_discharged) << EngineVersionName(version);
    if (inter.panics_discharged > base.panics_discharged) ++strictly_more;
    EXPECT_GT(analysis.sccp_branches_folded, 0) << EngineVersionName(version);
    EXPECT_GT(analysis.pure_functions, 0) << EngineVersionName(version);
  }
  EXPECT_GE(strictly_more, 3);
}

TEST(PrunedVerifier, StrictlyFewerSolverChecksOnGolden) {
  VerifyContext context;
  VerifyOptions off;
  off.prune = false;
  VerifyOptions on;
  on.prune = true;
  VerificationReport base =
      RunVerifyPipeline(&context, EngineVersion::kGolden, Figure11Zone(), off);
  VerificationReport pruned =
      RunVerifyPipeline(&context, EngineVersion::kGolden, Figure11Zone(), on);
  ASSERT_TRUE(base.verified) << base.ToString();
  ASSERT_TRUE(pruned.verified) << pruned.ToString();
  EXPECT_LT(pruned.solver_checks, base.solver_checks)
      << "pruning must strictly reduce exploration solver checks";
  EXPECT_GT(pruned.paths_pruned, 0);
  EXPECT_GT(pruned.panics_discharged, 0);
  // The prune stage shows up in the stage breakdown with its counters.
  bool saw_prune_stage = false;
  for (const StageStats& stage : pruned.stages) {
    if (stage.stage == "prune") {
      saw_prune_stage = true;
      EXPECT_EQ(stage.panics_discharged, pruned.panics_discharged);
      EXPECT_EQ(stage.paths_pruned, pruned.paths_pruned);
    }
  }
  EXPECT_TRUE(saw_prune_stage);
}

}  // namespace
}  // namespace dnsv

#include "src/analysis/prune.h"

#include <gtest/gtest.h>

#include "src/analysis/absdomain.h"
#include "src/analysis/dataflow.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/validate.h"

namespace dnsv {
namespace {

class PruneTest : public ::testing::Test {
 protected:
  PruneTest() : module_(&types_) {}

  // The canonical frontend shape for `for i := 0; i < len(xs); ... { xs[i] }`:
  // the loop bound and the bounds check both measure the same list, so the
  // guard's panic side is statically infeasible.
  Function* BuildBoundedLoop() {
    Type list_ty = types_.ListOf(types_.IntType());
    Function* fn = module_.AddFunction("sumList", {{"xs", list_ty}}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId head = b.CreateBlock("head");
    BlockId body = b.CreateBlock("body");
    BlockId ok = b.CreateBlock("ok");
    BlockId exit = b.CreateBlock("exit");
    b.SetInsertPoint(entry);
    Operand acc = b.Alloca(types_.IntType());
    b.Store(acc, b.Int(0));
    Operand i = b.Alloca(types_.IntType());
    b.Store(i, b.Int(0));
    b.Jmp(head);
    b.SetInsertPoint(head);
    Operand iv = b.Load(i);
    Operand n = b.ListLen(b.Param(0));
    Operand in_range = b.BinaryOp(BinOp::kLt, iv, n, types_.BoolType());
    b.Br(in_range, body, exit);
    b.SetInsertPoint(body);
    Operand iv2 = b.Load(i);
    Operand neg = b.BinaryOp(BinOp::kLt, iv2, b.Int(0), types_.BoolType());
    Operand n2 = b.ListLen(b.Param(0));
    Operand oob = b.BinaryOp(BinOp::kGe, iv2, n2, types_.BoolType());
    Operand bad = b.BinaryOp(BinOp::kOr, neg, oob, types_.BoolType());
    BlockId panic_bb = b.GetPanicBlock("index out of range");
    b.Br(bad, panic_bb, ok);
    b.SetInsertPoint(ok);
    Operand elem = b.ListGet(b.Param(0), iv2);
    Operand sum = b.BinaryOp(BinOp::kAdd, b.Load(acc), elem, types_.IntType());
    b.Store(acc, sum);
    Operand next = b.BinaryOp(BinOp::kAdd, b.Load(i), b.Int(1), types_.IntType());
    b.Store(i, next);
    b.Jmp(head);
    b.SetInsertPoint(exit);
    b.Ret(b.Load(acc));
    return fn;
  }

  // The guard checks a caller-supplied index: nothing bounds it, so the
  // panic side stays feasible and the pruner must keep the branch.
  Function* BuildUnprovableGuard() {
    Type list_ty = types_.ListOf(types_.IntType());
    Function* fn = module_.AddFunction(
        "getAt", {{"xs", list_ty}, {"k", types_.IntType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    BlockId entry = b.CreateBlock("entry");
    BlockId ok = b.CreateBlock("ok");
    b.SetInsertPoint(entry);
    Operand k = b.Param(1);
    Operand neg = b.BinaryOp(BinOp::kLt, k, b.Int(0), types_.BoolType());
    Operand n = b.ListLen(b.Param(0));
    Operand oob = b.BinaryOp(BinOp::kGe, k, n, types_.BoolType());
    Operand bad = b.BinaryOp(BinOp::kOr, neg, oob, types_.BoolType());
    BlockId panic_bb = b.GetPanicBlock("index out of range");
    b.Br(bad, panic_bb, ok);
    b.SetInsertPoint(ok);
    b.Ret(b.ListGet(b.Param(0), k));
    return fn;
  }

  TypeTable types_;
  Module module_;
};

TEST_F(PruneTest, DischargesLoopBoundedIndexCheck) {
  Function* fn = BuildBoundedLoop();
  ASSERT_TRUE(ValidateFunction(module_, *fn).ok());
  std::string before = PrintFunction(module_, *fn);
  EXPECT_NE(before.find("panic \"index out of range\""), std::string::npos);

  PruneStats stats = PruneFunction(module_, fn);
  EXPECT_EQ(stats.panics_discharged, 1);
  EXPECT_EQ(stats.panic_blocks_removed, 1);
  EXPECT_EQ(stats.functions_skipped, 0);
  EXPECT_GT(stats.PathsPruned(), 0);

  // Golden diff: the guard became a jmp and the panic block is gone.
  std::string after = PrintFunction(module_, *fn);
  EXPECT_EQ(after.find("panic"), std::string::npos) << after;
  EXPECT_NE(after.find("jmp"), std::string::npos);
  // The pruned function satisfies the strict validator: panic blocks
  // terminal, every block reachable.
  ValidateOptions strict;
  strict.require_reachable = true;
  EXPECT_TRUE(ValidateFunction(module_, *fn, strict).ok());
}

TEST_F(PruneTest, KeepsGuardOnUnconstrainedIndex) {
  Function* fn = BuildUnprovableGuard();
  std::string before = PrintFunction(module_, *fn);
  PruneStats stats = PruneFunction(module_, fn);
  EXPECT_EQ(stats.panics_discharged, 0);
  // Byte-identical: a pruner that cannot prove anything must change nothing.
  EXPECT_EQ(PrintFunction(module_, *fn), before);
}

TEST_F(PruneTest, SolverDropsPanicEdgeOfDischargedGuard) {
  Function* fn = BuildBoundedLoop();
  ValueTable values;
  PruneDomain domain(&values);
  ASSERT_TRUE(PreflightAllocasDontEscape(*fn));
  DataflowResult<PruneDomain> solved = SolveForwardDataflow(*fn, &domain);
  ASSERT_TRUE(solved.converged);
  // Every block is reached except the panic block: its only incoming edge is
  // the infeasible side of the discharged guard.
  for (BlockId blk = 0; blk < fn->num_blocks(); ++blk) {
    if (fn->block(blk).is_panic_block) {
      EXPECT_FALSE(solved.block_in[blk].has_value()) << "bb" << blk;
    } else {
      EXPECT_TRUE(solved.block_in[blk].has_value()) << "bb" << blk;
    }
  }
}

TEST_F(PruneTest, ModuleAggregatesStats) {
  Function* bounded = BuildBoundedLoop();
  Function* unprovable = BuildUnprovableGuard();
  (void)bounded;
  (void)unprovable;
  PruneStats stats = PruneModule(&module_);
  EXPECT_EQ(stats.functions_analyzed, 2);
  EXPECT_EQ(stats.panics_discharged, 1);
  EXPECT_EQ(stats.panic_blocks_removed, 1);
  EXPECT_NE(stats.ToString(), "");
}

}  // namespace
}  // namespace dnsv

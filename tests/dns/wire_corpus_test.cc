// Checked-in malformed-packet corpus for the wire codec (docs/WIRE.md).
//
// Every *.hex file under wire_fuzz_corpus/ is a wire packet in the fuzzer's
// hex format ('#'/';' line comments). The filename prefix states the
// expectation:
//
//   query_accept_*  ParseWireQuery must accept, and the parsed query must
//                   round-trip through EncodeWireQuery byte-identically
//   query_reject_*  ParseWireQuery must reject with a clean error
//   query_notimp_*  ParseWireQuery must reject (well-formed packet, opcode
//                   outside the QUERY subset); the serving shell answers
//                   NOTIMP for these, which tests/server/serve_test.cc pins
//   query_badvers_* ParseWireQuery must accept with edns.version > 0 (the
//                   serving shell answers BADVERS, pinned in serve_test.cc);
//                   still a byte fixpoint
//   query_clamp_*   ParseWireQuery must accept with the sub-512 advertised
//                   payload clamped to 512 (RFC 6891 §6.2.3); deliberately
//                   NOT a byte fixpoint — the canonical re-encode advertises
//                   the clamp and must re-parse to the same query
//   resp_accept_*   ParseWireResponse must accept, and the view must survive
//                   re-encode -> re-parse (compressed packets re-encode
//                   uncompressed, so equality is at the view level)
//   resp_reject_*   ParseWireResponse must reject with a clean error
//
// Independently of its prefix, every packet is fed to BOTH parsers: a
// malformed packet may at worst be rejected, never crash or hang — under
// ci/check.sh the same corpus runs with ASan/UBSan watching.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/wire.h"
#include "src/fuzz/packet_gen.h"

namespace dnsv {
namespace {

struct CorpusFile {
  std::string name;  // filename, e.g. "resp_reject_forward_pointer.hex"
  std::vector<uint8_t> packet;
};

std::vector<CorpusFile> LoadCorpus() {
  std::vector<CorpusFile> corpus;
  for (const auto& entry : std::filesystem::directory_iterator(DNSV_WIRE_CORPUS_DIR)) {
    if (entry.path().extension() != ".hex") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    Result<std::vector<uint8_t>> packet = HexToWirePacket(text.str());
    EXPECT_TRUE(packet.ok()) << entry.path() << ": " << packet.error();
    if (packet.ok()) {
      corpus.push_back({entry.path().filename().string(), std::move(packet).value()});
    }
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const CorpusFile& a, const CorpusFile& b) { return a.name < b.name; });
  return corpus;
}

bool HasPrefix(const std::string& name, const std::string& prefix) {
  return name.rfind(prefix, 0) == 0;
}

TEST(WireCorpusTest, EveryPacketMeetsItsFilenameExpectation) {
  std::vector<CorpusFile> corpus = LoadCorpus();
  ASSERT_GE(corpus.size(), 10u) << "corpus directory missing or empty: " << DNSV_WIRE_CORPUS_DIR;

  int accepts = 0, rejects = 0;
  for (const CorpusFile& file : corpus) {
    SCOPED_TRACE(file.name);
    // Crash-safety: both parsers must terminate cleanly on every packet,
    // whatever it claims to be.
    Result<WireQuery> as_query = ParseWireQuery(file.packet);
    WireQuery echoed;
    Result<ResponseView> as_response = ParseWireResponse(file.packet, &echoed);

    if (HasPrefix(file.name, "query_accept_")) {
      ASSERT_TRUE(as_query.ok()) << as_query.error();
      // Canonical queries are encode fixpoints.
      EXPECT_EQ(EncodeWireQuery(as_query.value()), file.packet);
      ++accepts;
    } else if (HasPrefix(file.name, "query_reject_") || HasPrefix(file.name, "query_notimp_")) {
      EXPECT_FALSE(as_query.ok());
      EXPECT_FALSE(as_query.error().empty());
      ++rejects;
    } else if (HasPrefix(file.name, "query_badvers_")) {
      ASSERT_TRUE(as_query.ok()) << as_query.error();
      EXPECT_TRUE(as_query.value().edns.present);
      EXPECT_NE(as_query.value().edns.version, 0);
      EXPECT_EQ(EncodeWireQuery(as_query.value()), file.packet);
      ++accepts;
    } else if (HasPrefix(file.name, "query_clamp_")) {
      ASSERT_TRUE(as_query.ok()) << as_query.error();
      EXPECT_TRUE(as_query.value().edns.present);
      EXPECT_EQ(as_query.value().edns.udp_payload, kEdnsMinPayload);
      std::vector<uint8_t> canonical = EncodeWireQuery(as_query.value());
      EXPECT_NE(canonical, file.packet) << "a sub-512 advertisement cannot be a fixpoint";
      Result<WireQuery> again = ParseWireQuery(canonical);
      ASSERT_TRUE(again.ok()) << again.error();
      EXPECT_EQ(again.value().qname, as_query.value().qname);
      EXPECT_EQ(again.value().edns, as_query.value().edns);
      ++accepts;
    } else if (HasPrefix(file.name, "resp_accept_")) {
      ASSERT_TRUE(as_response.ok()) << as_response.error();
      // The view survives re-encode -> re-parse. Byte equality is not
      // required: the corpus may use compression, the encoder never does.
      Result<std::vector<uint8_t>> reencoded =
          EncodeWireResponse(echoed, as_response.value(), size_t{1} << 20);
      ASSERT_TRUE(reencoded.ok()) << reencoded.error();
      WireQuery echoed2;
      Result<ResponseView> reparsed = ParseWireResponse(reencoded.value(), &echoed2);
      ASSERT_TRUE(reparsed.ok()) << reparsed.error();
      EXPECT_EQ(reparsed.value(), as_response.value());
      EXPECT_EQ(echoed2.qname, echoed.qname);
      EXPECT_EQ(echoed2.qtype, echoed.qtype);
      ++accepts;
    } else if (HasPrefix(file.name, "resp_reject_")) {
      EXPECT_FALSE(as_response.ok());
      EXPECT_FALSE(as_response.error().empty());
      ++rejects;
    } else {
      ADD_FAILURE() << "corpus filename has no accept/reject prefix: " << file.name;
    }
  }
  // The corpus must keep exercising both sides of the codec's judgment.
  EXPECT_GE(accepts, 6);
  EXPECT_GE(rejects, 11);
}

// The three historical codec bugs each have a dedicated corpus witness; if
// one is renamed or dropped, this test names what went missing.
TEST(WireCorpusTest, HistoricalBugWitnessesArePresent) {
  std::vector<CorpusFile> corpus = LoadCorpus();
  auto has = [&corpus](const std::string& name) {
    for (const CorpusFile& file : corpus) {
      if (file.name == name) {
        return true;
      }
    }
    return false;
  };
  // ReadRecord once accepted records whose rdata did not consume RDLENGTH.
  EXPECT_TRUE(has("resp_reject_rdlength_lie.hex"));
  // PutRecord once crashed (.value() on an error Result) on a 64-byte label.
  EXPECT_TRUE(has("resp_reject_label_overlong.hex"));
  // Compression loops / forward pointers must stay rejected, not hang.
  EXPECT_TRUE(has("resp_reject_compression_self_loop.hex"));
  EXPECT_TRUE(has("resp_reject_forward_pointer.hex"));
  // The EDNS-blind era (ISSUE 10): ParseWireQuery accepted trailing garbage
  // and silently dropped OPT records; these witnesses pin the strict regime.
  EXPECT_TRUE(has("query_reject_trailing_garbage.hex"));
  EXPECT_TRUE(has("query_reject_ancount_nonzero.hex"));
  EXPECT_TRUE(has("query_accept_opt_4096.hex"));
  EXPECT_TRUE(has("query_reject_opt_multiple.hex"));
  EXPECT_TRUE(has("query_reject_opt_nonroot.hex"));
  EXPECT_TRUE(has("query_badvers_version1.hex"));
  EXPECT_TRUE(has("query_clamp_payload_100.hex"));
}

}  // namespace
}  // namespace dnsv

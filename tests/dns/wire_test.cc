// Conventional unit tests for the wire codec — the component the paper
// excludes from formal verification (footnote 1) and covers by testing.
#include "src/dns/wire.h"

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/support/rng.h"

namespace dnsv {
namespace {

WireQuery MakeQuery(const std::string& qname, RrType qtype, uint16_t id = 0x1234) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  query.recursion_desired = true;
  return query;
}

TEST(WireQueryCodec, RoundTrip) {
  WireQuery query = MakeQuery("www.example.com", RrType::kAaaa, 0xBEEF);
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  Result<WireQuery> parsed = ParseWireQuery(packet);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().id, 0xBEEF);
  EXPECT_EQ(parsed.value().qname.ToString(), "www.example.com");
  EXPECT_EQ(parsed.value().qtype, RrType::kAaaa);
  EXPECT_TRUE(parsed.value().recursion_desired);
}

TEST(WireQueryCodec, KnownBytes) {
  // Hand-checked encoding of "ab.c A IN" with id 1, RD clear.
  WireQuery query;
  query.id = 1;
  query.qname = DnsName::Parse("ab.c").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  const uint8_t expected[] = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,        // header
                              2, 'a', 'b', 1, 'c', 0,                    // QNAME
                              0, 1, 0, 1};                               // QTYPE, QCLASS
  ASSERT_EQ(packet.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(packet[i], expected[i]) << "byte " << i << "\n" << HexDump(packet);
  }
}

TEST(WireQueryCodec, RejectsMalformedPackets) {
  EXPECT_FALSE(ParseWireQuery({1, 2, 3}).ok());  // too short
  // QR bit set (a response, not a query).
  std::vector<uint8_t> response_bits = EncodeWireQuery(MakeQuery("a.b", RrType::kA));
  response_bits[2] |= 0x80;
  EXPECT_FALSE(ParseWireQuery(response_bits).ok());
  // Truncated name.
  std::vector<uint8_t> truncated = EncodeWireQuery(MakeQuery("abc.example", RrType::kA));
  truncated.resize(14);
  EXPECT_FALSE(ParseWireQuery(truncated).ok());
}

TEST(WireQueryCodec, RejectsCompressionLoop) {
  // Header + a name that is a pointer to itself at offset 12.
  std::vector<uint8_t> packet = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1};
  EXPECT_FALSE(ParseWireQuery(packet).ok());
}

// --- regression: the EDNS-blind parser (ISSUE 10) ---
//
// Before the fix, ParseWireQuery stopped reading after the question: OPT
// records were silently dropped (so clients negotiated payloads the server
// never saw) and arbitrary trailing bytes were accepted. Now every byte must
// be accounted for and the additional section is parsed strictly.
TEST(WireQueryCodec, RejectsTrailingGarbageAndAnswerCounts) {
  std::vector<uint8_t> packet = EncodeWireQuery(MakeQuery("a.b", RrType::kA));
  std::vector<uint8_t> garbage = packet;
  garbage.push_back(0xde);
  Result<WireQuery> parsed = ParseWireQuery(garbage);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("trailing"), std::string::npos) << parsed.error();

  std::vector<uint8_t> answers = packet;
  answers[7] = 1;  // ANCOUNT = 1: queries carry no answer section
  EXPECT_FALSE(ParseWireQuery(answers).ok());
  std::vector<uint8_t> authority = packet;
  authority[9] = 1;  // NSCOUNT = 1
  EXPECT_FALSE(ParseWireQuery(authority).ok());
}

TEST(WireEdnsCodec, OptRoundTripsPayloadVersionAndDo) {
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  query.edns.present = true;
  query.edns.udp_payload = 1232;
  query.edns.dnssec_ok = true;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  Result<WireQuery> parsed = ParseWireQuery(packet);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().edns.present);
  EXPECT_EQ(parsed.value().edns.udp_payload, 1232);
  EXPECT_TRUE(parsed.value().edns.dnssec_ok);
  EXPECT_EQ(parsed.value().edns.version, 0);
  EXPECT_EQ(parsed.value().edns, query.edns);
  // And the canonical form is a byte fixpoint.
  EXPECT_EQ(EncodeWireQuery(parsed.value()), packet);
}

TEST(WireEdnsCodec, KnownOptBytes) {
  // Hand-checked OPT for a 4096-payload DO query: root owner, TYPE 41,
  // CLASS = payload, TTL = ext-rcode | version | DO+Z, RDLENGTH 0.
  WireQuery query;
  query.id = 1;
  query.qname = DnsName::Parse("ab.c").value();
  query.qtype = RrType::kA;
  query.edns.present = true;
  query.edns.udp_payload = 4096;
  query.edns.dnssec_ok = true;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  const uint8_t expected[] = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1,  // header, ARCOUNT=1
                              2, 'a', 'b', 1, 'c', 0, 0, 1, 0, 1,  // question
                              0,                                   // root owner
                              0, 41,                               // TYPE = OPT
                              0x10, 0x00,                          // CLASS = 4096
                              0, 0, 0x80, 0,                       // TTL: DO set
                              0, 0};                               // RDLENGTH = 0
  ASSERT_EQ(packet.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(packet[i], expected[i]) << "byte " << i << "\n" << HexDump(packet);
  }
}

TEST(WireEdnsCodec, SubMinimumPayloadClampsAtParseAndEncode) {
  // RFC 6891 §6.2.3: an advertisement below 512 is treated as 512. The clamp
  // lands at parse time (EdnsInfo always holds the effective value) and the
  // encoder never emits a sub-512 advertisement.
  WireQuery query = MakeQuery("a.b", RrType::kA);
  query.edns.present = true;
  query.edns.udp_payload = 100;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  Result<WireQuery> parsed = ParseWireQuery(packet);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().edns.udp_payload, kEdnsMinPayload);
}

TEST(WireEdnsCodec, RejectsMultipleOptAndNonRootOwner) {
  WireQuery query = MakeQuery("a.b", RrType::kA);
  query.edns.present = true;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  // Duplicate the 11-byte OPT tail and bump ARCOUNT: RFC 6891 §6.1.1 allows
  // at most one.
  std::vector<uint8_t> doubled = packet;
  doubled.insert(doubled.end(), packet.end() - 11, packet.end());
  doubled[11] = 2;
  Result<WireQuery> two = ParseWireQuery(doubled);
  ASSERT_FALSE(two.ok());
  EXPECT_NE(two.error().find("multiple OPT"), std::string::npos) << two.error();
  // Replace the root owner (first byte of the 11-byte OPT tail) with the
  // one-label name "x".
  ASSERT_GE(packet.size(), 11u);
  std::vector<uint8_t> nonroot(packet.begin(), packet.end() - 11);
  nonroot.insert(nonroot.end(), {1, 'x', 0});
  nonroot.insert(nonroot.end(), packet.end() - 10, packet.end());
  Result<WireQuery> named = ParseWireQuery(nonroot);
  ASSERT_FALSE(named.ok());
  EXPECT_NE(named.error().find("non-root"), std::string::npos) << named.error();
}

TEST(WireEdnsCodec, BadVersionStillParsesSoItCanBeAnswered) {
  // RFC 6891 §6.1.3: BADVERS must be *sent*, which means the parser cannot
  // reject an unknown version — the serving shell needs the query addressed.
  WireQuery query = MakeQuery("a.b", RrType::kA);
  query.edns.present = true;
  query.edns.version = 3;
  Result<WireQuery> parsed = ParseWireQuery(EncodeWireQuery(query));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().edns.version, 3);
}

TEST(WireEdnsCodec, ScanQueryForOptRecoversFromUnparseablePackets) {
  // The tolerant scanner backs the RFC 6891 §7 error paths: a FORMERR-bound
  // packet still gets its OPT echoed if one can be found.
  WireQuery query = MakeQuery("a.b", RrType::kA);
  query.edns.present = true;
  query.edns.dnssec_ok = true;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  packet.push_back(0xde);  // trailing garbage: the strict parser rejects this
  ASSERT_FALSE(ParseWireQuery(packet).ok());
  EdnsInfo scanned;
  EXPECT_TRUE(ScanQueryForOpt(packet.data(), packet.size(), &scanned));
  EXPECT_TRUE(scanned.present);
  EXPECT_TRUE(scanned.dnssec_ok);
  // And on a packet with no OPT at all, it reports absence without rejecting.
  std::vector<uint8_t> plain = EncodeWireQuery(MakeQuery("a.b", RrType::kA));
  EdnsInfo none;
  EXPECT_FALSE(ScanQueryForOpt(plain.data(), plain.size(), &none));
  EXPECT_FALSE(none.present);
}

class WireResponseTest : public ::testing::Test {
 protected:
  WireResponseTest() {
    server_ = std::move(
        AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  }

  // Serve a query through the engine and round-trip it through the wire.
  void RoundTrip(const std::string& qname, RrType qtype) {
    WireQuery query = MakeQuery(qname, qtype);
    QueryResult result = server_->Query(query.qname, qtype);
    ASSERT_FALSE(result.panicked);
    Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, result.response);
    ASSERT_TRUE(encoded.ok()) << encoded.error();
    const std::vector<uint8_t>& packet = encoded.value();
    WireQuery echoed;
    Result<ResponseView> parsed = ParseWireResponse(packet, &echoed);
    ASSERT_TRUE(parsed.ok()) << parsed.error() << "\n" << HexDump(packet);
    EXPECT_EQ(echoed.id, query.id);
    EXPECT_EQ(echoed.qname.ToString(), query.qname.ToString());
    EXPECT_EQ(parsed.value(), result.response)
        << "wire round-trip changed the response for " << qname << "\nbefore:\n"
        << result.response.ToString() << "after:\n" << parsed.value().ToString();
  }

  std::unique_ptr<AuthoritativeServer> server_;
};

TEST_F(WireResponseTest, RoundTripsEveryScenario) {
  RoundTrip("www.example.com", RrType::kA);          // multi-A answer
  RoundTrip("www.example.com", RrType::kAny);        // A + A + TXT
  RoundTrip("chain.example.com", RrType::kA);        // CNAME chain
  RoundTrip("example.com", RrType::kMx);             // MX + additional
  RoundTrip("example.com", RrType::kNs);             // NS + AAAA glue
  RoundTrip("deep.sub.example.com", RrType::kA);     // referral
  RoundTrip("example.com", RrType::kSoa);            // SOA rdata
  RoundTrip("missing.example.com", RrType::kA);      // NXDOMAIN + SOA authority
  RoundTrip("host.dyn.example.com", RrType::kA);     // wildcard synthesis
}

TEST_F(WireResponseTest, HeaderFlagsReflectResponse) {
  WireQuery query = MakeQuery("missing.example.com", RrType::kA);
  QueryResult result = server_->Query(query.qname, query.qtype);
  std::vector<uint8_t> packet = EncodeWireResponse(query, result.response).value();
  // QR set, AA set, RCODE = 3 (NXDOMAIN).
  EXPECT_EQ(packet[2] & 0x80, 0x80);
  EXPECT_EQ(packet[2] & 0x04, 0x04);
  EXPECT_EQ(packet[3] & 0x0F, 3);
}

TEST_F(WireResponseTest, CountsMatchSections) {
  WireQuery query = MakeQuery("deep.sub.example.com", RrType::kA);
  QueryResult result = server_->Query(query.qname, query.qtype);
  std::vector<uint8_t> packet = EncodeWireResponse(query, result.response).value();
  EXPECT_EQ((packet[4] << 8) | packet[5], 1);    // QDCOUNT
  EXPECT_EQ((packet[6] << 8) | packet[7], 0);    // ANCOUNT (referral)
  EXPECT_EQ((packet[8] << 8) | packet[9], 2);    // NSCOUNT
  EXPECT_EQ((packet[10] << 8) | packet[11], 2);  // ARCOUNT (glue)
}

// --- regression: RDLENGTH must bound the rdata exactly ---
//
// Before the fix, ReadRecord never checked that name-valued rdata consumed
// exactly RDLENGTH bytes, so a lying RDLENGTH desynchronized the reader and
// mis-parsed every subsequent record instead of failing.
TEST(WireRdlength, RejectsRecordWhoseRdataDisagreesWithRdlength) {
  // Response: header (QR set, ANCOUNT=2) + empty question + NS record whose
  // RDLENGTH claims 6 bytes but whose rdata name "ab." is only 4, followed by
  // a well-formed A record that a desynchronized reader would mis-parse.
  std::vector<uint8_t> packet = {
      0x12, 0x34, 0x80, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00,  // header
      // record 1: owner "x.", NS, IN, TTL 0, RDLENGTH 6 (lie: rdata is 4)
      0x01, 'x', 0x00, 0x00, 0x02, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x06,
      0x02, 'a', 'b', 0x00,
      // record 2: owner "y.", A, IN, TTL 0, RDLENGTH 4, 192.0.2.1
      0x01, 'y', 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04,
      0xC0, 0x00, 0x02, 0x01};
  WireQuery echoed;
  EXPECT_FALSE(ParseWireResponse(packet, &echoed).ok());
  // With a truthful RDLENGTH the same packet parses fine.
  packet[24] = 0x04;
  Result<ResponseView> parsed = ParseWireResponse(packet, &echoed);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().answer.size(), 2u);
  EXPECT_EQ(parsed.value().answer[1].name, "y");
  EXPECT_EQ(parsed.value().answer[1].type, RrType::kA);
}

TEST(WireRdlength, RejectsCompressedRdataNameThatOverrunsRdlength) {
  // MX rdata: 2-byte preference + a compression pointer back to the owner;
  // the pointer consumes 2 bytes, so real rdata size is 4 but RDLENGTH says 9.
  std::vector<uint8_t> packet = {
      0x00, 0x01, 0x80, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      // owner "m." at offset 12, MX, IN, TTL 0, RDLENGTH 9
      0x01, 'm', 0x00, 0x00, 0x0F, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x09,
      0x00, 0x0A, 0xC0, 0x0C};
  WireQuery echoed;
  EXPECT_FALSE(ParseWireResponse(packet, &echoed).ok());
  packet[24] = 0x04;  // truthful RDLENGTH
  Result<ResponseView> parsed = ParseWireResponse(packet, &echoed);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().answer.size(), 1u);
  EXPECT_EQ(parsed.value().answer[0].rdata_name, "m");
  EXPECT_EQ(parsed.value().answer[0].rdata_value, 10);
}

// --- regression: un-encodable names surface an error instead of crashing ---
//
// Before the fix, PutRecord called DnsName::Parse(...).value() on owner and
// rdata names, so a 64-byte label aborted the process mid-encode.
TEST(WireEncodeErrors, OversizedLabelIsAnErrorNotACrash) {
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  ResponseView response;
  RrView rr;
  rr.name = std::string(64, 'a') + ".example.com";  // one label over the 63-byte limit
  rr.type = RrType::kA;
  rr.rdata_value = 0x7F000001;
  response.answer.push_back(rr);
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, response);
  ASSERT_FALSE(encoded.ok());
  EXPECT_NE(encoded.error().find("64"), std::string::npos) << encoded.error();

  // The same label on the rdata side of a CNAME fails too, not just owners.
  response.answer[0] = RrView{.name = "www.example.com",
                              .type = RrType::kCname,
                              .rdata_value = 0,
                              .rdata_name = std::string(64, 'b') + ".example.com"};
  EXPECT_FALSE(EncodeWireResponse(query, response).ok());

  // Wire-valid but zone-syntax-invalid names (interior '*' labels, as
  // produced by wildcard counterexamples) must encode fine.
  response.answer[0] =
      RrView{.name = "*.*.example.com", .type = RrType::kA, .rdata_value = 1, .rdata_name = ""};
  Result<std::vector<uint8_t>> wildcard = EncodeWireResponse(query, response);
  ASSERT_TRUE(wildcard.ok()) << wildcard.error();
  WireQuery echoed;
  Result<ResponseView> parsed = ParseWireResponse(wildcard.value(), &echoed);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().answer[0].name, "*.*.example.com");
}

TEST(WireEncodeErrors, NameOver255WireBytesIsRejected) {
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  ResponseView response;
  std::string deep;  // 130 labels of "aa." = 391 wire bytes
  for (int i = 0; i < 130; ++i) {
    deep += "aa.";
  }
  response.answer.push_back(
      RrView{.name = deep + "com", .type = RrType::kA, .rdata_value = 1, .rdata_name = ""});
  EXPECT_FALSE(EncodeWireResponse(query, response).ok());
}

// --- regression: truncation and count overflow ---
//
// Before the fix, section counts were silently static_cast to uint16_t (65536
// records aliased to an ANCOUNT of 0) and oversized responses went out
// untruncated with TC clear.
TEST(WireTruncation, SetsTcAndDropsWholeRecordsBackToFront) {
  WireQuery query = MakeQuery("big.example.com", RrType::kAny);
  ResponseView response;
  response.aa = true;
  for (int i = 0; i < 40; ++i) {
    // ~29 wire bytes per record: 40 records ≈ 1160 bytes, well over 512.
    response.answer.push_back(RrView{.name = "big.example.com",
                                     .type = RrType::kA,
                                     .rdata_value = 0x0A000000 + i,
                                     .rdata_name = ""});
  }
  response.authority.push_back(RrView{.name = "example.com",
                                      .type = RrType::kNs,
                                      .rdata_value = 0,
                                      .rdata_name = "ns1.example.com"});
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, response);
  ASSERT_TRUE(encoded.ok()) << encoded.error();
  EXPECT_LE(encoded.value().size(), kMaxUdpPayload);
  WireQuery echoed;
  bool truncated = false;
  Result<ResponseView> parsed = ParseWireResponse(encoded.value(), &echoed, &truncated);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(truncated);
  // Back-to-front: the authority record (and trailing answers) are dropped
  // first; the surviving answers are an exact prefix.
  EXPECT_TRUE(parsed.value().authority.empty());
  ASSERT_GT(parsed.value().answer.size(), 0u);
  ASSERT_LT(parsed.value().answer.size(), 40u);
  for (size_t i = 0; i < parsed.value().answer.size(); ++i) {
    EXPECT_EQ(parsed.value().answer[i], response.answer[i]) << "answer " << i;
  }
  // Flags survive truncation.
  EXPECT_TRUE(parsed.value().aa);
  EXPECT_EQ(parsed.value().rcode, Rcode::kNoError);

  // A response that fits exactly is not truncated.
  ResponseView small;
  small.answer.push_back(response.answer[0]);
  bool small_truncated = true;
  Result<std::vector<uint8_t>> small_encoded = EncodeWireResponse(query, small);
  ASSERT_TRUE(small_encoded.ok());
  ASSERT_TRUE(ParseWireResponse(small_encoded.value(), &echoed, &small_truncated).ok());
  EXPECT_FALSE(small_truncated);
}

TEST(WireTruncation, NegotiatedLimitGovernsAndTheOptAlwaysSurvives) {
  // ISSUE 10: truncation was hardwired to 512 bytes regardless of what the
  // client advertised. Now EncodeWireResponse truncates at the caller's limit,
  // and the OPT record is budgeted for up front — it is never the record that
  // gets dropped (RFC 6891 requires the response to stay an EDNS response).
  WireQuery query = MakeQuery("big.example.com", RrType::kAny);
  query.edns.present = true;
  query.edns.udp_payload = 4096;
  ResponseView response;
  response.aa = true;
  for (int i = 0; i < 40; ++i) {
    response.answer.push_back(RrView{.name = "big.example.com",
                                     .type = RrType::kA,
                                     .rdata_value = 0x0A000000 + i,
                                     .rdata_name = ""});
  }
  size_t prev_answers = 0;
  for (size_t limit : {size_t{512}, size_t{1232}, size_t{4096}}) {
    SCOPED_TRACE(limit);
    Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, response, limit);
    ASSERT_TRUE(encoded.ok()) << encoded.error();
    EXPECT_LE(encoded.value().size(), limit);
    WireQuery echoed;
    bool truncated = false;
    Result<ResponseView> parsed = ParseWireResponse(encoded.value(), &echoed, &truncated);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_TRUE(echoed.edns.present) << "truncation dropped the OPT";
    // A bigger advertisement keeps strictly more of the ~1160-byte answer,
    // and 4096 holds all of it.
    EXPECT_GT(parsed.value().answer.size(), prev_answers);
    prev_answers = parsed.value().answer.size();
    EXPECT_EQ(truncated, limit < 4096);
  }
  EXPECT_EQ(prev_answers, 40u);
}

TEST(WireTruncation, QuestionAloneOverLimitIsAnError) {
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  EXPECT_FALSE(EncodeWireResponse(query, ResponseView{}, /*max_size=*/16).ok());
  // 12-byte header + 17-byte question + 4 = 33 bytes is the exact floor.
  EXPECT_TRUE(EncodeWireResponse(query, ResponseView{}, /*max_size=*/33).ok());
}

TEST(WireTruncation, SectionCountOverflowIsRejected) {
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  ResponseView response;
  response.answer.resize(65536, RrView{.name = "www.example.com",
                                       .type = RrType::kA,
                                       .rdata_value = 1,
                                       .rdata_name = ""});
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, response);
  ASSERT_FALSE(encoded.ok());
  EXPECT_NE(encoded.error().find("overflow"), std::string::npos) << encoded.error();
}

TEST(WireHexDump, Formats) {
  std::vector<uint8_t> data = {0x00, 0xff, 0x10};
  EXPECT_EQ(HexDump(data), "00 ff 10\n");
}


// Fuzz-lite: arbitrary bytes must never crash the parser (it may reject).
TEST(WireFuzz, RandomBytesNeverCrash) {
  SplitMix64 rng(0xF00D);
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    size_t size = rng.NextBelow(64);
    std::vector<uint8_t> packet(size);
    for (uint8_t& byte : packet) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    Result<WireQuery> query = ParseWireQuery(packet);
    accepted += query.ok() ? 1 : 0;
    WireQuery echoed;
    (void)ParseWireResponse(packet, &echoed);
  }
  // Random bytes almost never form a valid query; mostly this asserts we
  // survived 2000 packets without UB.
  EXPECT_LT(accepted, 100);
}

// Mutation fuzz: flip bytes of a VALID response packet; parsing must never
// crash and whatever parses must re-encode without tripping invariants.
TEST(WireFuzz, MutatedResponsesNeverCrash) {
  auto server = std::move(
      AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  WireQuery query = MakeQuery("chain.example.com", RrType::kA);
  QueryResult result = server->Query(query.qname, query.qtype);
  std::vector<uint8_t> base = EncodeWireResponse(query, result.response).value();
  SplitMix64 rng(0xBAD);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> packet = base;
    int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      packet[rng.NextBelow(packet.size())] = static_cast<uint8_t>(rng.NextBelow(256));
    }
    WireQuery echoed;
    (void)ParseWireResponse(packet, &echoed);
  }
  SUCCEED();
}

// --- RFC 1035 §4.2.2 TCP framing ----------------------------------------

TEST(TcpFraming, AppendPrefixesTheBigEndianLength) {
  std::vector<uint8_t> stream;
  std::vector<uint8_t> message = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(AppendTcpFrame(&stream, message).ok());
  ASSERT_EQ(stream.size(), 6u);
  EXPECT_EQ(stream[0], 0x00);
  EXPECT_EQ(stream[1], 0x04);
  EXPECT_EQ(std::vector<uint8_t>(stream.begin() + 2, stream.end()), message);

  // Frames append back to back on the same stream.
  ASSERT_TRUE(AppendTcpFrame(&stream, {0x42}).ok());
  ASSERT_EQ(stream.size(), 9u);
  EXPECT_EQ(stream[6], 0x00);
  EXPECT_EQ(stream[7], 0x01);
  EXPECT_EQ(stream[8], 0x42);
}

TEST(TcpFraming, RejectsMessagesTheLengthFieldCannotExpress) {
  std::vector<uint8_t> stream;
  std::vector<uint8_t> too_big(kMaxTcpPayload + 1, 0xAA);
  EXPECT_FALSE(AppendTcpFrame(&stream, too_big).ok());
  EXPECT_TRUE(stream.empty()) << "a failed append must not leave partial bytes";
  std::vector<uint8_t> exactly_max(kMaxTcpPayload, 0xAA);
  EXPECT_TRUE(AppendTcpFrame(&stream, exactly_max).ok());
  EXPECT_EQ(stream.size(), 2u + kMaxTcpPayload);
}

TEST(TcpFraming, DecoderReassemblesAcrossArbitrarySplitPoints) {
  std::vector<uint8_t> message(300);
  for (size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> stream;
  ASSERT_TRUE(AppendTcpFrame(&stream, message).ok());

  // Every split point, including mid-length-prefix, yields the same message.
  for (size_t split = 0; split <= stream.size(); ++split) {
    TcpFrameDecoder decoder;
    std::vector<uint8_t> out;
    decoder.Feed(stream.data(), split);
    bool early = decoder.Next(&out);
    EXPECT_EQ(early, split == stream.size()) << "split at " << split;
    if (!early) {
      decoder.Feed(stream.data() + split, stream.size() - split);
      ASSERT_TRUE(decoder.Next(&out)) << "split at " << split;
    }
    EXPECT_EQ(out, message) << "split at " << split;
    EXPECT_FALSE(decoder.Next(&out));
  }
}

TEST(TcpFraming, DecoderYieldsPipelinedMessagesInOrder) {
  std::vector<uint8_t> stream;
  ASSERT_TRUE(AppendTcpFrame(&stream, {0x01}).ok());
  ASSERT_TRUE(AppendTcpFrame(&stream, {0x02, 0x02}).ok());
  ASSERT_TRUE(AppendTcpFrame(&stream, {0x03, 0x03, 0x03}).ok());
  TcpFrameDecoder decoder;
  // Byte-at-a-time feeding: the worst-case fragmentation.
  for (uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
  }
  std::vector<uint8_t> out;
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, std::vector<uint8_t>({0x01}));
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, std::vector<uint8_t>({0x02, 0x02}));
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, std::vector<uint8_t>({0x03, 0x03, 0x03}));
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(TcpFraming, ZeroLengthFrameIsAValidEmptyMessage) {
  // A 0-length frame is wire-legal; the serving layer treats the empty
  // message as a parse failure, but the decoder must hand it through rather
  // than stall the stream.
  std::vector<uint8_t> stream = {0x00, 0x00};
  ASSERT_TRUE(AppendTcpFrame(&stream, {0x07}).ok());
  TcpFrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::vector<uint8_t> out = {0xFF};
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, std::vector<uint8_t>({0x07}));
}

TEST(TcpFraming, RoundTripsARealDnsAnswerThatUdpMustTruncate) {
  auto server = std::move(
      AuthoritativeServer::Create(EngineVersion::kGolden, WideRrsetZone()).value());
  WireQuery query = MakeQuery("www.example.com", RrType::kA);
  QueryResult result = server->Query(query.qname, query.qtype);
  ASSERT_FALSE(result.panicked);

  // Over UDP the 40-record answer truncates; over TCP framing it must not.
  std::vector<uint8_t> udp = EncodeWireResponse(query, result.response).value();
  EXPECT_TRUE((udp[2] & 0x02) != 0) << "expected TC=1 at the UDP clamp";
  std::vector<uint8_t> full =
      EncodeWireResponse(query, result.response, kMaxTcpPayload).value();
  EXPECT_GT(full.size(), kMaxUdpPayload);

  std::vector<uint8_t> stream;
  ASSERT_TRUE(AppendTcpFrame(&stream, full).ok());
  TcpFrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, full);
  bool truncated = true;
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(out, &echoed, &truncated);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_FALSE(truncated);
  EXPECT_EQ(view.value().answer.size(), 40u);
}

}  // namespace
}  // namespace dnsv

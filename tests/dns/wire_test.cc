// Conventional unit tests for the wire codec — the component the paper
// excludes from formal verification (footnote 1) and covers by testing.
#include "src/dns/wire.h"

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/support/rng.h"

namespace dnsv {
namespace {

WireQuery MakeQuery(const std::string& qname, RrType qtype, uint16_t id = 0x1234) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  query.recursion_desired = true;
  return query;
}

TEST(WireQueryCodec, RoundTrip) {
  WireQuery query = MakeQuery("www.example.com", RrType::kAaaa, 0xBEEF);
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  Result<WireQuery> parsed = ParseWireQuery(packet);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().id, 0xBEEF);
  EXPECT_EQ(parsed.value().qname.ToString(), "www.example.com");
  EXPECT_EQ(parsed.value().qtype, RrType::kAaaa);
  EXPECT_TRUE(parsed.value().recursion_desired);
}

TEST(WireQueryCodec, KnownBytes) {
  // Hand-checked encoding of "ab.c A IN" with id 1, RD clear.
  WireQuery query;
  query.id = 1;
  query.qname = DnsName::Parse("ab.c").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> packet = EncodeWireQuery(query);
  const uint8_t expected[] = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,        // header
                              2, 'a', 'b', 1, 'c', 0,                    // QNAME
                              0, 1, 0, 1};                               // QTYPE, QCLASS
  ASSERT_EQ(packet.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(packet[i], expected[i]) << "byte " << i << "\n" << HexDump(packet);
  }
}

TEST(WireQueryCodec, RejectsMalformedPackets) {
  EXPECT_FALSE(ParseWireQuery({1, 2, 3}).ok());  // too short
  // QR bit set (a response, not a query).
  std::vector<uint8_t> response_bits = EncodeWireQuery(MakeQuery("a.b", RrType::kA));
  response_bits[2] |= 0x80;
  EXPECT_FALSE(ParseWireQuery(response_bits).ok());
  // Truncated name.
  std::vector<uint8_t> truncated = EncodeWireQuery(MakeQuery("abc.example", RrType::kA));
  truncated.resize(14);
  EXPECT_FALSE(ParseWireQuery(truncated).ok());
}

TEST(WireQueryCodec, RejectsCompressionLoop) {
  // Header + a name that is a pointer to itself at offset 12.
  std::vector<uint8_t> packet = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1};
  EXPECT_FALSE(ParseWireQuery(packet).ok());
}

class WireResponseTest : public ::testing::Test {
 protected:
  WireResponseTest() {
    server_ = std::move(
        AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  }

  // Serve a query through the engine and round-trip it through the wire.
  void RoundTrip(const std::string& qname, RrType qtype) {
    WireQuery query = MakeQuery(qname, qtype);
    QueryResult result = server_->Query(query.qname, qtype);
    ASSERT_FALSE(result.panicked);
    std::vector<uint8_t> packet = EncodeWireResponse(query, result.response);
    WireQuery echoed;
    Result<ResponseView> parsed = ParseWireResponse(packet, &echoed);
    ASSERT_TRUE(parsed.ok()) << parsed.error() << "\n" << HexDump(packet);
    EXPECT_EQ(echoed.id, query.id);
    EXPECT_EQ(echoed.qname.ToString(), query.qname.ToString());
    EXPECT_EQ(parsed.value(), result.response)
        << "wire round-trip changed the response for " << qname << "\nbefore:\n"
        << result.response.ToString() << "after:\n" << parsed.value().ToString();
  }

  std::unique_ptr<AuthoritativeServer> server_;
};

TEST_F(WireResponseTest, RoundTripsEveryScenario) {
  RoundTrip("www.example.com", RrType::kA);          // multi-A answer
  RoundTrip("www.example.com", RrType::kAny);        // A + A + TXT
  RoundTrip("chain.example.com", RrType::kA);        // CNAME chain
  RoundTrip("example.com", RrType::kMx);             // MX + additional
  RoundTrip("example.com", RrType::kNs);             // NS + AAAA glue
  RoundTrip("deep.sub.example.com", RrType::kA);     // referral
  RoundTrip("example.com", RrType::kSoa);            // SOA rdata
  RoundTrip("missing.example.com", RrType::kA);      // NXDOMAIN + SOA authority
  RoundTrip("host.dyn.example.com", RrType::kA);     // wildcard synthesis
}

TEST_F(WireResponseTest, HeaderFlagsReflectResponse) {
  WireQuery query = MakeQuery("missing.example.com", RrType::kA);
  QueryResult result = server_->Query(query.qname, query.qtype);
  std::vector<uint8_t> packet = EncodeWireResponse(query, result.response);
  // QR set, AA set, RCODE = 3 (NXDOMAIN).
  EXPECT_EQ(packet[2] & 0x80, 0x80);
  EXPECT_EQ(packet[2] & 0x04, 0x04);
  EXPECT_EQ(packet[3] & 0x0F, 3);
}

TEST_F(WireResponseTest, CountsMatchSections) {
  WireQuery query = MakeQuery("deep.sub.example.com", RrType::kA);
  QueryResult result = server_->Query(query.qname, query.qtype);
  std::vector<uint8_t> packet = EncodeWireResponse(query, result.response);
  EXPECT_EQ((packet[4] << 8) | packet[5], 1);    // QDCOUNT
  EXPECT_EQ((packet[6] << 8) | packet[7], 0);    // ANCOUNT (referral)
  EXPECT_EQ((packet[8] << 8) | packet[9], 2);    // NSCOUNT
  EXPECT_EQ((packet[10] << 8) | packet[11], 2);  // ARCOUNT (glue)
}

TEST(WireHexDump, Formats) {
  std::vector<uint8_t> data = {0x00, 0xff, 0x10};
  EXPECT_EQ(HexDump(data), "00 ff 10\n");
}


// Fuzz-lite: arbitrary bytes must never crash the parser (it may reject).
TEST(WireFuzz, RandomBytesNeverCrash) {
  SplitMix64 rng(0xF00D);
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    size_t size = rng.NextBelow(64);
    std::vector<uint8_t> packet(size);
    for (uint8_t& byte : packet) {
      byte = static_cast<uint8_t>(rng.NextBelow(256));
    }
    Result<WireQuery> query = ParseWireQuery(packet);
    accepted += query.ok() ? 1 : 0;
    WireQuery echoed;
    (void)ParseWireResponse(packet, &echoed);
  }
  // Random bytes almost never form a valid query; mostly this asserts we
  // survived 2000 packets without UB.
  EXPECT_LT(accepted, 100);
}

// Mutation fuzz: flip bytes of a VALID response packet; parsing must never
// crash and whatever parses must re-encode without tripping invariants.
TEST(WireFuzz, MutatedResponsesNeverCrash) {
  auto server = std::move(
      AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  WireQuery query = MakeQuery("chain.example.com", RrType::kA);
  QueryResult result = server->Query(query.qname, query.qtype);
  std::vector<uint8_t> base = EncodeWireResponse(query, result.response);
  SplitMix64 rng(0xBAD);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> packet = base;
    int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      packet[rng.NextBelow(packet.size())] = static_cast<uint8_t>(rng.NextBelow(256));
    }
    WireQuery echoed;
    (void)ParseWireResponse(packet, &echoed);
  }
  SUCCEED();
}

}  // namespace
}  // namespace dnsv

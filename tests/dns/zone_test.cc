#include "src/dns/zone.h"

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"

namespace dnsv {
namespace {

TEST(ZoneParse, ParsesAllRecordTypes) {
  Result<ZoneConfig> zone = ParseZoneText(R"(
$ORIGIN example.com.
@      SOA    ns1 1
@      NS     ns1.example.com.
ns1    A      192.0.2.1
ns1    AAAA   77
www    CNAME  ns1
mail   MX     10 ns1
note   TXT    1234
)");
  ASSERT_TRUE(zone.ok()) << zone.error();
  const ZoneConfig& z = zone.value();
  EXPECT_EQ(z.origin.ToString(), "example.com");
  ASSERT_EQ(z.records.size(), 7u);
  EXPECT_EQ(z.records[0].type, RrType::kSoa);
  EXPECT_EQ(z.records[0].rdata.name.ToString(), "ns1.example.com");
  EXPECT_EQ(z.records[2].rdata.value, (int64_t{192} << 24) + (0 << 16) + (2 << 8) + 1);
  EXPECT_EQ(z.records[4].rdata.name.ToString(), "ns1.example.com");
  EXPECT_EQ(z.records[5].rdata.value, 10);
}

TEST(ZoneParse, RelativeVsAbsoluteNames) {
  ZoneConfig z = ParseZoneText(
      "$ORIGIN zone.test.\nwww A 1.2.3.4\nother.example. NS target.zone.test.\n").value();
  EXPECT_EQ(z.records[0].name.ToString(), "www.zone.test");
  EXPECT_EQ(z.records[1].name.ToString(), "other.example");
}

TEST(ZoneParse, CommentsAndBlanksIgnored) {
  Result<ZoneConfig> zone = ParseZoneText(
      "$ORIGIN z.test.\n; comment\n\n# another\n@ SOA ns 1\n");
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone.value().records.size(), 1u);
}

TEST(ZoneParse, Errors) {
  EXPECT_FALSE(ParseZoneText("www A 1.2.3.4\n").ok());                      // no origin
  EXPECT_FALSE(ParseZoneText("$ORIGIN z.\nwww BOGUS x\n").ok());            // bad type
  EXPECT_FALSE(ParseZoneText("$ORIGIN z.\nwww A 300.1.1.1\n").ok());        // bad IP
  EXPECT_FALSE(ParseZoneText("$ORIGIN z.\nwww ANY 1\n").ok());              // pseudo-type
  EXPECT_FALSE(ParseZoneText("$ORIGIN z.\nmail MX ten www\n").ok());        // bad pref
}

TEST(ZoneText, RoundTrips) {
  ZoneConfig zone = KitchenSinkZone();
  Result<ZoneConfig> reparsed = ParseZoneText(zone.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  ASSERT_EQ(reparsed.value().records.size(), zone.records.size());
  for (size_t i = 0; i < zone.records.size(); ++i) {
    EXPECT_EQ(reparsed.value().records[i], zone.records[i]) << "record " << i;
  }
}

TEST(Canonicalize, GroupsByNameThenType) {
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN z.test.
@    SOA ns 1
www  A   1.1.1.1
mail A   2.2.2.2
www  TXT 7
www  A   3.3.3.3
)").value();
  ZoneConfig canonical = CanonicalizeZone(zone).value();
  ASSERT_EQ(canonical.records.size(), 5u);
  // www group: A, A, TXT (type order by first appearance); then mail.
  EXPECT_EQ(canonical.records[1].name.ToString(), "www.z.test");
  EXPECT_EQ(canonical.records[1].type, RrType::kA);
  EXPECT_EQ(canonical.records[2].type, RrType::kA);
  EXPECT_EQ(canonical.records[2].rdata.value & 0xff, 3);
  EXPECT_EQ(canonical.records[3].type, RrType::kTxt);
  EXPECT_EQ(canonical.records[4].name.ToString(), "mail.z.test");
}

TEST(Canonicalize, RequiresExactlyOneApexSoa) {
  EXPECT_FALSE(CanonicalizeZone(ParseZoneText("$ORIGIN z.\nwww A 1.1.1.1\n").value()).ok());
  EXPECT_FALSE(CanonicalizeZone(
                   ParseZoneText("$ORIGIN z.\n@ SOA a 1\n@ SOA b 2\n").value()).ok());
  EXPECT_FALSE(CanonicalizeZone(
                   ParseZoneText("$ORIGIN z.\nwww SOA a 1\n").value()).ok());  // not apex
}

TEST(Canonicalize, RejectsCnameCoexistence) {
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN z.test.
@    SOA ns 1
www  CNAME mail
www  A   1.1.1.1
)").value();
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  EXPECT_FALSE(canonical.ok());
  EXPECT_NE(canonical.error().find("CNAME"), std::string::npos);
}

TEST(Canonicalize, RejectsDuplicatesAndOutOfZone) {
  EXPECT_FALSE(CanonicalizeZone(ParseZoneText(
      "$ORIGIN z.test.\n@ SOA ns 1\nwww A 1.1.1.1\nwww A 1.1.1.1\n").value()).ok());
  EXPECT_FALSE(CanonicalizeZone(ParseZoneText(
      "$ORIGIN z.test.\n@ SOA ns 1\nother.example. A 1.1.1.1\n").value()).ok());
}

TEST(Canonicalize, RejectsWildcardNs) {
  EXPECT_FALSE(CanonicalizeZone(ParseZoneText(
      "$ORIGIN z.test.\n@ SOA ns 1\n* NS ns.z.test.\n").value()).ok());
}

TEST(ExampleZones, AllCanonicalizable) {
  EXPECT_TRUE(CanonicalizeZone(Figure11Zone()).ok());
  EXPECT_TRUE(CanonicalizeZone(KitchenSinkZone()).ok());
  EXPECT_TRUE(CanonicalizeZone(QuickstartZone()).ok());
  EXPECT_TRUE(CanonicalizeZone(BugHuntZone()).ok());
}

}  // namespace
}  // namespace dnsv

#include "src/dns/heap.h"

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"

namespace dnsv {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : engine_(CompiledEngine::Compile(EngineVersion::kGolden)) {}

  HeapImage Build(const ZoneConfig& zone) {
    canonical_ = CanonicalizeZone(zone).value();
    return BuildHeapImage(canonical_, &interner_, engine_->types(), &memory_);
  }

  // Follows the down/left/right pointers to find a child with `label`.
  const Value* FindChild(const Value& node_ptr, const std::string& label) {
    const Value* node = memory_.Resolve(node_ptr.block, node_ptr.path);
    if (node == nullptr) {
      return nullptr;
    }
    StructLayout layout(engine_->types(), kStructTreeNode);
    int64_t code = interner_.Intern(label);
    const Value* cur_ptr = &node->elems[layout.index("down")];
    while (!cur_ptr->IsNullPtr()) {
      const Value* cur = memory_.Resolve(cur_ptr->block, cur_ptr->path);
      int64_t cur_label = cur->elems[layout.index("label")].i;
      if (code == cur_label) {
        return cur;
      }
      cur_ptr = &cur->elems[layout.index(code < cur_label ? "left" : "right")];
    }
    return nullptr;
  }

  std::unique_ptr<CompiledEngine> engine_;
  ZoneConfig canonical_;
  LabelInterner interner_;
  ConcreteMemory memory_;
};

TEST_F(HeapTest, EngineLayoutValidates) {
  EXPECT_TRUE(ValidateEngineLayout(engine_->types()).ok());
}

TEST_F(HeapTest, FlatListMatchesCanonicalOrder) {
  HeapImage image = Build(Figure11Zone());
  ASSERT_EQ(image.zone_rrs.elems.size(), canonical_.records.size());
  StructLayout rr(engine_->types(), kStructRr);
  for (size_t i = 0; i < canonical_.records.size(); ++i) {
    EXPECT_EQ(image.zone_rrs.elems[i].elems[rr.index("rtype")].i,
              static_cast<int64_t>(canonical_.records[i].type))
        << "record " << i;
  }
}

TEST_F(HeapTest, TreeShapeMatchesFigure11) {
  HeapImage image = Build(Figure11Zone());
  // Fig. 11: apex has children {ns1, www, cs}; cs has {web, zoo}.
  EXPECT_NE(FindChild(image.apex_ptr, "www"), nullptr);
  EXPECT_NE(FindChild(image.apex_ptr, "cs"), nullptr);
  EXPECT_NE(FindChild(image.apex_ptr, "ns1"), nullptr);
  EXPECT_EQ(FindChild(image.apex_ptr, "zoo"), nullptr);  // zoo only under cs

  const Value* cs = FindChild(image.apex_ptr, "cs");
  ASSERT_NE(cs, nullptr);
  StructLayout layout(engine_->types(), kStructTreeNode);
  Value cs_ptr = Value::Ptr(0);
  // Re-locate cs as a pointer by scanning: FindChild returned the struct; use
  // its down list through the struct directly.
  const Value* web = nullptr;
  {
    // Find from cs's down pointer.
    const Value* cur = cs;
    const Value* down_ptr = &cur->elems[layout.index("down")];
    ASSERT_FALSE(down_ptr->IsNullPtr());
    // cs has exactly two children (web, zoo) in a BST.
    const Value* root = memory_.Resolve(down_ptr->block, down_ptr->path);
    ASSERT_NE(root, nullptr);
    int64_t web_code = interner_.Intern("web");
    if (root->elems[layout.index("label")].i == web_code) {
      web = root;
    } else {
      const Value* left = &root->elems[layout.index("left")];
      const Value* right = &root->elems[layout.index("right")];
      if (!left->IsNullPtr()) {
        const Value* l = memory_.Resolve(left->block, left->path);
        if (l->elems[layout.index("label")].i == web_code) web = l;
      }
      if (web == nullptr && !right->IsNullPtr()) {
        const Value* r = memory_.Resolve(right->block, right->path);
        if (r->elems[layout.index("label")].i == web_code) web = r;
      }
    }
  }
  EXPECT_NE(web, nullptr);
  // 8 nodes: apex, ns1, www, cs, web, zoo (+0 ENTs in this zone).
  EXPECT_EQ(image.num_tree_nodes, 6);
  (void)cs_ptr;
}

TEST_F(HeapTest, EmptyNonTerminalNodesAreCreated) {
  HeapImage image = Build(KitchenSinkZone());
  // "ent" exists only as ancestor of leaf.ent: it must be a tree node with no
  // rrsets.
  const Value* ent = FindChild(image.apex_ptr, "ent");
  ASSERT_NE(ent, nullptr);
  StructLayout layout(engine_->types(), kStructTreeNode);
  EXPECT_TRUE(ent->elems[layout.index("rrsets")].elems.empty());
}

TEST_F(HeapTest, RrsetsGroupedByType) {
  HeapImage image = Build(KitchenSinkZone());
  const Value* www = FindChild(image.apex_ptr, "www");
  ASSERT_NE(www, nullptr);
  StructLayout node(engine_->types(), kStructTreeNode);
  StructLayout rrset(engine_->types(), kStructRrSet);
  const Value& rrsets = www->elems[node.index("rrsets")];
  // www has A (x2) and TXT.
  ASSERT_EQ(rrsets.elems.size(), 2u);
  EXPECT_EQ(rrsets.elems[0].elems[rrset.index("rtype")].i, 1);   // A first
  EXPECT_EQ(rrsets.elems[0].elems[rrset.index("rrs")].elems.size(), 2u);
  EXPECT_EQ(rrsets.elems[1].elems[rrset.index("rtype")].i, 16);  // TXT
}

TEST_F(HeapTest, OriginLabelsRootFirst) {
  HeapImage image = Build(Figure11Zone());
  ASSERT_EQ(image.origin_labels.elems.size(), 2u);
  EXPECT_EQ(interner_.Decode(image.origin_labels.elems[0].i), "com");
  EXPECT_EQ(interner_.Decode(image.origin_labels.elems[1].i), "example");
}

TEST_F(HeapTest, WildcardNodeUsesStarCode) {
  HeapImage image = Build(KitchenSinkZone());
  const Value* dyn = FindChild(image.apex_ptr, "dyn");
  ASSERT_NE(dyn, nullptr);
  StructLayout layout(engine_->types(), kStructTreeNode);
  const Value* star_ptr = &dyn->elems[layout.index("down")];
  ASSERT_FALSE(star_ptr->IsNullPtr());
  const Value* star = memory_.Resolve(star_ptr->block, star_ptr->path);
  EXPECT_EQ(star->elems[layout.index("label")].i, 2);  // LABEL_STAR
}

}  // namespace
}  // namespace dnsv

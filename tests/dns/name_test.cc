#include "src/dns/name.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

TEST(DnsName, ParseBasics) {
  Result<DnsName> name = DnsName::Parse("www.Example.COM");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value().labels, (std::vector<std::string>{"www", "example", "com"}));
  EXPECT_EQ(name.value().ToString(), "www.example.com");
}

TEST(DnsName, ParseAbsoluteAndRoot) {
  EXPECT_EQ(DnsName::Parse("example.com.").value().NumLabels(), 2u);
  EXPECT_TRUE(DnsName::Parse("").value().Empty());
  EXPECT_EQ(DnsName::Parse("").value().ToString(), ".");
}

TEST(DnsName, ParseRejectsBadLabels) {
  EXPECT_FALSE(DnsName::Parse("a..b").ok());
  EXPECT_FALSE(DnsName::Parse("bad label.com").ok());
  EXPECT_FALSE(DnsName::Parse(std::string(64, 'a') + ".com").ok());
  EXPECT_FALSE(DnsName::Parse("ab*c.com").ok());      // '*' must be a whole label
  EXPECT_FALSE(DnsName::Parse("www.*.com").ok());     // '*' must be leftmost
  EXPECT_TRUE(DnsName::Parse("*.example.com").ok());
}

TEST(DnsName, SubdomainChecks) {
  DnsName www = DnsName::Parse("www.example.com").value();
  DnsName zone = DnsName::Parse("example.com").value();
  DnsName other = DnsName::Parse("example.org").value();
  EXPECT_TRUE(www.IsSubdomainOf(zone));
  EXPECT_TRUE(zone.IsSubdomainOf(zone));
  EXPECT_FALSE(zone.IsSubdomainOf(www));
  EXPECT_FALSE(www.IsSubdomainOf(other));
}

TEST(DnsName, ReversedLabels) {
  DnsName www = DnsName::Parse("www.example.com").value();
  EXPECT_EQ(www.ReversedLabels(), (std::vector<std::string>{"com", "example", "www"}));
}

TEST(LabelInterner, OrderPreservingForUpfrontLabels) {
  LabelInterner interner;
  int64_t a = interner.Intern("aaa");
  int64_t b = interner.Intern("bbb");
  int64_t c = interner.Intern("ccc");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(LabelInterner, OrderPreservingUnderLateInsertion) {
  LabelInterner interner;
  int64_t a = interner.Intern("aaa");
  int64_t c = interner.Intern("ccc");
  int64_t b = interner.Intern("bbb");  // inserted between existing neighbors
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(LabelInterner, StableAndCaseInsensitive) {
  LabelInterner interner;
  EXPECT_EQ(interner.Intern("WWW"), interner.Intern("www"));
}

TEST(LabelInterner, WildcardHasFixedSmallestCode) {
  LabelInterner interner;
  int64_t star = interner.Intern("*");
  EXPECT_EQ(star, 2);
  // '*' must stay below every other label.
  EXPECT_LT(star, interner.Intern("0"));
  EXPECT_LT(star, interner.Intern("a"));
  EXPECT_LT(star, interner.Intern("-dash"));
}

TEST(LabelInterner, DecodeRoundTrip) {
  LabelInterner interner;
  int64_t code = interner.Intern("example");
  EXPECT_EQ(interner.Decode(code), "example");
  EXPECT_EQ(interner.Decode(code + 1), StrCat("<label#", code + 1, ">"));
}

TEST(LabelInterner, InternNameIsRootFirst) {
  LabelInterner interner;
  DnsName www = DnsName::Parse("www.example.com").value();
  std::vector<int64_t> codes = interner.InternName(www);
  ASSERT_EQ(codes.size(), 3u);
  EXPECT_EQ(interner.Decode(codes[0]), "com");
  EXPECT_EQ(interner.Decode(codes[2]), "www");
}

// Property sweep: pairwise integer order always equals lexicographic order,
// regardless of insertion order.
class InternerOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(InternerOrderTest, PairwiseOrderMatchesLexicographic) {
  // Insert a label set in a seed-dependent shuffled order.
  std::vector<std::string> labels = {"a", "ab", "abc", "b", "ba", "corp", "corpx",
                                     "z", "z0", "z9", "zz", "-", "_", "0", "9"};
  SplitMix64 rng(static_cast<uint64_t>(GetParam()));
  for (size_t i = labels.size(); i > 1; --i) {
    std::swap(labels[i - 1], labels[rng.NextBelow(i)]);
  }
  LabelInterner interner;
  for (const std::string& label : labels) {
    interner.Intern(label);
  }
  for (const std::string& x : labels) {
    for (const std::string& y : labels) {
      EXPECT_EQ(x < y, interner.Intern(x) < interner.Intern(y))
          << x << " vs " << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shuffles, InternerOrderTest, ::testing::Range(0, 8));


TEST(LabelInterner, DecodeApproxExactAndSynthesized) {
  LabelInterner interner;
  int64_t cs = interner.Intern("cs");
  int64_t www = interner.Intern("www");
  EXPECT_EQ(interner.DecodeApprox(cs), "cs");
  // A code strictly between cs and www synthesizes a label just after "cs".
  int64_t mid = (cs + www) / 2;
  ASSERT_NE(mid, cs);
  ASSERT_NE(mid, www);
  std::string synthesized = interner.DecodeApprox(mid);
  EXPECT_GT(synthesized, std::string("cs"));
  EXPECT_LT(synthesized, std::string("www"));
  // Below every interned label (only "*" is pre-interned).
  EXPECT_EQ(interner.DecodeApprox(1), "0");
}

TEST(LabelInterner, DecodeApproxAboveAll) {
  LabelInterner interner;
  int64_t zz = interner.Intern("zz");
  std::string above = interner.DecodeApprox(zz + 1000);
  EXPECT_GT(above, std::string("zz"));
}

}  // namespace
}  // namespace dnsv

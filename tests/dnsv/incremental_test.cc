// Incremental pipeline semantics (docs/INCREMENTAL.md): replay, store
// modes, the DNSV_STORE_FORCE override, report serialization, and the
// warm-vs-cold byte-identity guarantee across every engine version —
// including the buggy ones, whose reports carry counterexamples and wire
// packets.
#include "src/dnsv/incremental.h"

#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/dnsv/pipeline.h"
#include "src/smt/query_cache.h"

namespace dnsv {
namespace {

namespace fs = std::filesystem;

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("DNSV_STORE_DIR");
    ::unsetenv("DNSV_STORE_FORCE");
    ::unsetenv("DNSV_SOLVER_FORCE");
    root_ = fs::temp_directory_path() /
            ("dnsv-incremental-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  // Every run gets a fresh context and a cleared global query cache, so the
  // only state carried between runs is the artifact store itself.
  VerificationReport Run(EngineVersion version, ArtifactStore* store, StoreMode mode) {
    VerifyContext context;
    QueryCache::Global()->Clear();
    VerifyOptions options;
    options.use_summaries = true;
    options.prune = true;
    options.store = store;
    options.store_mode = mode;
    return RunVerifyPipeline(&context, version, Figure11Zone(), options);
  }

  fs::path root_;
};

TEST_F(IncrementalTest, ColdThenWarmReplays) {
  ArtifactStore store(root_.string());
  VerificationReport cold = Run(EngineVersion::kGolden, &store, StoreMode::kIncremental);
  ASSERT_FALSE(cold.aborted) << cold.abort_reason;
  EXPECT_TRUE(cold.incremental.store_enabled);
  EXPECT_FALSE(cold.incremental.replayed);
  EXPECT_GT(store.GetStats().total_count, 0);

  VerificationReport warm = Run(EngineVersion::kGolden, &store, StoreMode::kIncremental);
  EXPECT_TRUE(warm.incremental.replayed);
  EXPECT_EQ(warm.incremental.functions_reused, warm.incremental.functions_total);
  EXPECT_EQ(warm.incremental.layers_reused, warm.incremental.layers_total);
  EXPECT_EQ(NormalizedReportText(warm), NormalizedReportText(cold));
}

// The central soundness claim: for every version — verified and buggy alike
// — the store-free report, the cold store-writing report, and the warm
// replayed report agree byte for byte on the normalized text.
TEST_F(IncrementalTest, WarmVsColdByteIdentityAllVersions) {
  for (EngineVersion version : AllEngineVersions()) {
    SCOPED_TRACE(EngineVersionName(version));
    ArtifactStore store((root_ / EngineVersionName(version)).string());
    VerificationReport bare = Run(version, nullptr, StoreMode::kOff);
    ASSERT_FALSE(bare.aborted) << bare.abort_reason;
    EXPECT_FALSE(bare.incremental.store_enabled);

    VerificationReport cold = Run(version, &store, StoreMode::kIncremental);
    EXPECT_FALSE(cold.incremental.replayed);
    EXPECT_EQ(NormalizedReportText(cold), NormalizedReportText(bare));

    VerificationReport warm = Run(version, &store, StoreMode::kIncremental);
    EXPECT_TRUE(warm.incremental.replayed);
    EXPECT_EQ(NormalizedReportText(warm), NormalizedReportText(bare));
    // Replay serves the full report: issues, classifications, and the wire
    // packets survive the round-trip.
    ASSERT_EQ(warm.issues.size(), bare.issues.size());
    for (size_t i = 0; i < warm.issues.size(); ++i) {
      EXPECT_EQ(warm.issues[i].ToString(), bare.issues[i].ToString());
    }
  }
}

TEST_F(IncrementalTest, OffModeIgnoresTheStore) {
  ArtifactStore store(root_.string());
  VerificationReport report = Run(EngineVersion::kGolden, &store, StoreMode::kOff);
  EXPECT_FALSE(report.incremental.store_enabled);
  EXPECT_EQ(store.GetStats().total_count, 0);
}

TEST_F(IncrementalTest, ColdModeWritesButNeverReplays) {
  ArtifactStore store(root_.string());
  VerificationReport first = Run(EngineVersion::kGolden, &store, StoreMode::kIncremental);
  ASSERT_FALSE(first.incremental.replayed);
  VerificationReport second = Run(EngineVersion::kGolden, &store, StoreMode::kCold);
  EXPECT_TRUE(second.incremental.store_enabled);
  EXPECT_FALSE(second.incremental.replayed);
  EXPECT_EQ(second.incremental.functions_reused, 0);
  EXPECT_EQ(NormalizedReportText(second), NormalizedReportText(first));
}

TEST_F(IncrementalTest, ShadowModeCrossChecksTheStoredReport) {
  ArtifactStore store(root_.string());
  VerificationReport cold = Run(EngineVersion::kV2, &store, StoreMode::kIncremental);
  ASSERT_FALSE(cold.aborted) << cold.abort_reason;
  // Shadow recomputes everything and asserts byte-identity against the
  // stored report (a mismatch aborts the process), so a clean return with
  // shadow_checked set IS the verification.
  VerificationReport shadow = Run(EngineVersion::kV2, &store, StoreMode::kShadow);
  EXPECT_TRUE(shadow.incremental.shadow_checked);
  EXPECT_FALSE(shadow.incremental.replayed);
  EXPECT_EQ(NormalizedReportText(shadow), NormalizedReportText(cold));
}

TEST_F(IncrementalTest, EnvForceOffWinsOverExplicitStore) {
  ArtifactStore store(root_.string());
  ::setenv("DNSV_STORE_FORCE", "off", 1);
  VerificationReport report = Run(EngineVersion::kGolden, &store, StoreMode::kIncremental);
  ::unsetenv("DNSV_STORE_FORCE");
  EXPECT_FALSE(report.incremental.store_enabled);
  EXPECT_EQ(store.GetStats().total_count, 0);
}

// Janus's core scenario: verify v3.0, then verify the edited engine (dev).
// The changed resolve cone is recomputed; every untouched layer's marker
// carries across the version boundary because the keys are content hashes,
// not version names.
TEST_F(IncrementalTest, EditedVersionReusesUntouchedLayers) {
  ArtifactStore store(root_.string());
  VerificationReport base = Run(EngineVersion::kV3, &store, StoreMode::kIncremental);
  ASSERT_FALSE(base.aborted) << base.abort_reason;

  VerificationReport edited = Run(EngineVersion::kDev, &store, StoreMode::kIncremental);
  EXPECT_FALSE(edited.incremental.replayed);
  EXPECT_GT(edited.incremental.layers_reused, 0);
  EXPECT_LT(edited.incremental.layers_reused, edited.incremental.layers_total);
  EXPECT_FALSE(edited.incremental.dirty_layers.empty());
  EXPECT_GT(edited.incremental.functions_reused, 0);
}

TEST_F(IncrementalTest, ReportSerializationRoundTrips) {
  // v1.0 is buggy: the report carries issues, classifications, and wire
  // packets — the hard case for the codec.
  VerificationReport report = Run(EngineVersion::kV1, nullptr, StoreMode::kOff);
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  ASSERT_FALSE(report.issues.empty());

  const std::string payload = SerializeReport(report, 33, 8);
  VerificationReport decoded;
  int64_t functions_total = 0, layers_total = 0;
  ASSERT_TRUE(ParseReport(payload, &decoded, &functions_total, &layers_total));
  EXPECT_EQ(functions_total, 33);
  EXPECT_EQ(layers_total, 8);
  EXPECT_EQ(decoded.version, report.version);
  EXPECT_EQ(NormalizedReportText(decoded), NormalizedReportText(report));
  ASSERT_EQ(decoded.issues.size(), report.issues.size());
  for (size_t i = 0; i < decoded.issues.size(); ++i) {
    EXPECT_EQ(decoded.issues[i].ToString(), report.issues[i].ToString());
    EXPECT_EQ(decoded.issues[i].wire.query_packet, report.issues[i].wire.query_packet);
  }
}

TEST_F(IncrementalTest, ParseReportRejectsDamagedPayloads) {
  VerificationReport report = Run(EngineVersion::kGolden, nullptr, StoreMode::kOff);
  const std::string payload = SerializeReport(report, 35, 9);
  VerificationReport decoded;
  int64_t ft = 0, lt = 0;
  EXPECT_FALSE(ParseReport("", &decoded, &ft, &lt));
  EXPECT_FALSE(ParseReport("garbage bytes", &decoded, &ft, &lt));
  EXPECT_FALSE(ParseReport(payload.substr(0, payload.size() / 2), &decoded, &ft, &lt));
  EXPECT_FALSE(ParseReport(payload + "trailing", &decoded, &ft, &lt));
}

TEST_F(IncrementalTest, KeysSpellOutTheirInputs) {
  // Distinct versions hash to distinct source hashes; distinct options to
  // distinct digests; and every key embeds the schema version so a bump
  // invalidates everything at once.
  EXPECT_NE(EngineSourceHashHex(EngineVersion::kGolden),
            EngineSourceHashHex(EngineVersion::kDev));
  VerifyOptions a, b;
  b.safety_only = true;
  EXPECT_NE(VerifyOptionsDigest(a), VerifyOptionsDigest(b));
  const std::string key = ReportKey("s", "z", "o");
  EXPECT_NE(key.find(kStoreSchemaVersion), std::string::npos);
  EXPECT_NE(key, ReportKey("s2", "z", "o"));
  EXPECT_NE(ReportKey("s", "z", "o"), ReportKey("s", "z2", "o"));
  EXPECT_NE(FunctionMarkerKey(1, "z", "o"), FunctionMarkerKey(2, "z", "o"));
  EXPECT_NE(LayerMarkerKey(1, "z", "o"), FunctionMarkerKey(1, "z", "o"));
  EXPECT_NE(PruneCheckKey(1, true), PruneCheckKey(1, false));
}

}  // namespace
}  // namespace dnsv

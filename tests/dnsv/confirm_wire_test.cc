// Acceptance test for the Confirm stage's wire replay (docs/WIRE.md): every
// verifier counterexample for the Table-2 bugs must lower to a concrete wire
// packet whose engine response provably diverges from the spec response —
// the SMT model is visible as bytes on the wire, not only in decoded views.
//
// The zones are the distilled Table-2 pair from bench/table2_bug_finding:
// together they reveal all nine bugs across v1.0, v2.0, v3.0, and dev, while
// golden, v4.0, and v5.0 verify clean.
#include <gtest/gtest.h>

#include "src/dns/wire.h"
#include "src/dnsv/pipeline.h"

namespace dnsv {
namespace {

ZoneConfig WildcardZone() {
  // Reveals: #1 AA on wildcard, #2 NS authority on positives, #3 MX matching,
  // #5 wildcard glue, #6 deep wildcard search, #7 SOA-mname glue, #8 ENT
  // wildcard fallback.
  return ParseZoneText(R"(
$ORIGIN corp.test.
@        SOA  ns1 7
@        NS   ns1.corp.test.
ns1      A    198.51.100.1
shop     MX   10 ns1
shop     A    198.51.100.30
*        TXT  99
*        MX   20 ns1
deep.box A    198.51.100.40
)").value();
}

ZoneConfig DelegationZone() {
  // Reveals: #4 multi-NS glue, #9 runtime error (NXDOMAIN under the apex
  // with no wildcard to fall back to).
  return ParseZoneText(R"(
$ORIGIN corp.test.
@        SOA  ns1 7
@        NS   ns1.corp.test.
ns1      A    198.51.100.1
child    NS   ns1.child.corp.test.
child    NS   ns2.child.corp.test.
ns1.child A   198.51.100.51
ns2.child A   198.51.100.52
)").value();
}

TEST(ConfirmWireTest, EveryTable2CounterexampleReplaysOnTheWire) {
  VerifyContext context;
  std::vector<ZoneConfig> zones = {WildcardZone(), DelegationZone()};
  std::vector<EngineVersion> buggy = {EngineVersion::kV1, EngineVersion::kV2,
                                      EngineVersion::kV3, EngineVersion::kDev};
  int replayed = 0;
  for (EngineVersion version : buggy) {
    int version_issues = 0;
    for (const ZoneConfig& zone : zones) {
      VerifyOptions options;
      options.max_issues = 6;
      VerificationReport report = RunVerifyPipeline(&context, version, zone, options);
      ASSERT_FALSE(report.aborted) << report.abort_reason;
      for (const VerificationIssue& issue : report.issues) {
        SCOPED_TRACE(issue.ToString());
        ++version_issues;
        EXPECT_TRUE(issue.confirmed);
        ASSERT_TRUE(issue.wire.attempted) << "wire lowering failed: " << issue.wire.error;
        EXPECT_TRUE(issue.wire.reproduced)
            << "engine and spec response packets are byte-identical";
        EXPECT_NE(issue.wire.engine_packet, issue.wire.spec_packet);
        // The replayed packet is a real query for the decoded counterexample.
        Result<WireQuery> parsed = ParseWireQuery(issue.wire.query_packet);
        ASSERT_TRUE(parsed.ok()) << parsed.error();
        EXPECT_EQ(parsed.value().qname.ToString(), issue.qname);
        EXPECT_EQ(parsed.value().qtype, issue.qtype);
        // Both response packets answer that same query.
        for (const std::vector<uint8_t>& packet :
             {issue.wire.engine_packet, issue.wire.spec_packet}) {
          WireQuery echoed;
          Result<ResponseView> view = ParseWireResponse(packet, &echoed);
          ASSERT_TRUE(view.ok()) << view.error();
          EXPECT_EQ(echoed.qname, parsed.value().qname);
          EXPECT_EQ(echoed.qtype, parsed.value().qtype);
        }
        ++replayed;
      }
    }
    EXPECT_GT(version_issues, 0) << "no issues found on " << EngineVersionName(version);
  }
  // The two zones surface every Table-2 bug; each confirmed issue above also
  // reproduced on the wire, so the count is a floor on replayed bugs.
  EXPECT_GE(replayed, 9);
}

TEST(ConfirmWireTest, CleanVersionsVerifyWithNothingToReplay) {
  VerifyContext context;
  for (EngineVersion version :
       {EngineVersion::kGolden, EngineVersion::kV4, EngineVersion::kV5}) {
    for (const ZoneConfig& zone : {WildcardZone(), DelegationZone()}) {
      VerifyOptions options;
      options.max_issues = 6;
      VerificationReport report = RunVerifyPipeline(&context, version, zone, options);
      EXPECT_FALSE(report.aborted) << report.abort_reason;
      EXPECT_TRUE(report.verified) << report.ToString();
      EXPECT_TRUE(report.issues.empty());
    }
  }
}

}  // namespace
}  // namespace dnsv

// Pipeline-specific tests: stage caching, parallel-vs-serial determinism,
// per-stage reporting, and the process-wide compiled-engine cache.
#include "src/dnsv/pipeline.h"

#include <gtest/gtest.h>

#include "src/engine/engine.h"

namespace dnsv {
namespace {

ZoneConfig ZoneA() {
  return ParseZoneText(R"(
$ORIGIN pa.test.
@   SOA ns 1
@   NS  ns.pa.test.
ns  A   192.0.2.1
www A   192.0.2.2
)").value();
}

ZoneConfig ZoneB() {
  return ParseZoneText(R"(
$ORIGIN pb.test.
@   SOA ns 1
@   NS  ns.pb.test.
ns  A   192.0.2.3
*   TXT 7
)").value();
}

// A zone on which v1.0 reports several confirmed issues — used to compare
// parallel and serial exploration on a non-trivial issue list.
ZoneConfig BuggyZone() {
  return ParseZoneText(R"(
$ORIGIN pc.test.
@   SOA ns 1
@   NS  ns.pc.test.
ns  A   192.0.2.1
www A   192.0.2.2
*   TXT 7
)").value();
}

TEST(PipelineCache, TwoZonesOneVersionCompileOnce) {
  VerifyContext context;
  int64_t compiles_before = CompiledEngine::num_compiles();
  VerificationReport a = RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneA());
  VerificationReport b = RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneB());
  EXPECT_TRUE(a.verified) << a.ToString();
  EXPECT_TRUE(b.verified) << b.ToString();
  EXPECT_EQ(CompiledEngine::num_compiles() - compiles_before, 1)
      << "two zones over one version must compile the engine exactly once";
  const VerifyContext::CacheStats& stats = context.cache_stats();
  EXPECT_EQ(stats.engine_compiles, 1);
  // Later stages re-fetch the engine from the cache (lift needs the type
  // table), so hits exceed one-per-run; what matters is no recompile.
  EXPECT_GE(stats.engine_cache_hits, 1);
  EXPECT_EQ(stats.zone_lifts, 2);  // distinct zones: no lift reuse
}

TEST(PipelineCache, AllVersionsOneZoneCompileOncePerVersion) {
  VerifyContext context;
  int64_t compiles_before = CompiledEngine::num_compiles();
  int num_versions = 0;
  for (EngineVersion version : AllEngineVersions()) {
    VerifyOptions options;
    options.max_issues = 1;  // verdict only: keep the sweep fast
    VerificationReport report = RunVerifyPipeline(&context, version, ZoneA(), options);
    EXPECT_FALSE(report.aborted) << report.abort_reason;
    ++num_versions;
  }
  EXPECT_EQ(num_versions, 7);
  EXPECT_EQ(CompiledEngine::num_compiles() - compiles_before, 7)
      << "verifying all 7 versions over one zone must perform exactly 7 compilations";
  EXPECT_EQ(context.cache_stats().engine_compiles, 7);
}

TEST(PipelineCache, RepeatedRunHitsBothCaches) {
  VerifyContext context;
  RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneA());
  VerificationReport second = RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneA());
  EXPECT_TRUE(second.verified) << second.ToString();
  const VerifyContext::CacheStats& stats = context.cache_stats();
  EXPECT_EQ(stats.engine_compiles, 1);
  EXPECT_EQ(stats.zone_lifts, 1);
  EXPECT_GE(stats.zone_cache_hits, 1);
  // The cached run must say so in its stage breakdown.
  bool compile_cached = false;
  bool lift_cached = false;
  for (const StageStats& stage : second.stages) {
    if (stage.stage == "compile") compile_cached = stage.from_cache;
    if (stage.stage == "lift") lift_cached = stage.from_cache;
  }
  EXPECT_TRUE(compile_cached) << second.ToString();
  EXPECT_TRUE(lift_cached) << second.ToString();
}

TEST(PipelineCache, ProcessWideGetCachedReturnsSameEngine) {
  std::shared_ptr<const CompiledEngine> first = CompiledEngine::GetCached(EngineVersion::kV2);
  int64_t compiles_after_first = CompiledEngine::num_compiles();
  std::shared_ptr<const CompiledEngine> second = CompiledEngine::GetCached(EngineVersion::kV2);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(CompiledEngine::num_compiles(), compiles_after_first);
}

// The acceptance criterion on determinism: with isolated per-worker arenas
// and a post-join fixed-order merge, parallel exploration must yield a
// byte-identical issue list to serial exploration.
TEST(PipelineParallel, IssueListsByteIdenticalToSerial) {
  VerifyContext context;
  VerifyOptions serial;
  serial.parallel_explore = false;
  VerifyOptions parallel;
  parallel.parallel_explore = true;
  VerificationReport serial_report =
      RunVerifyPipeline(&context, EngineVersion::kV1, BuggyZone(), serial);
  VerificationReport parallel_report =
      RunVerifyPipeline(&context, EngineVersion::kV1, BuggyZone(), parallel);
  ASSERT_FALSE(serial_report.aborted) << serial_report.abort_reason;
  ASSERT_FALSE(serial_report.verified);
  EXPECT_FALSE(serial_report.explored_in_parallel);
  EXPECT_TRUE(parallel_report.explored_in_parallel);
  ASSERT_EQ(serial_report.issues.size(), parallel_report.issues.size());
  for (size_t i = 0; i < serial_report.issues.size(); ++i) {
    EXPECT_EQ(serial_report.issues[i].ToString(), parallel_report.issues[i].ToString()) << i;
  }
  EXPECT_EQ(serial_report.engine_paths, parallel_report.engine_paths);
  EXPECT_EQ(serial_report.spec_paths, parallel_report.spec_paths);
}

TEST(PipelineParallel, CleanVerdictMatchesSerial) {
  VerifyContext context;
  VerifyOptions serial;
  serial.parallel_explore = false;
  serial.use_summaries = true;
  serial.use_manual_specs = true;
  VerifyOptions parallel = serial;
  parallel.parallel_explore = true;
  VerificationReport serial_report =
      RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneB(), serial);
  VerificationReport parallel_report =
      RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneB(), parallel);
  EXPECT_TRUE(serial_report.verified) << serial_report.ToString();
  EXPECT_TRUE(parallel_report.verified) << parallel_report.ToString();
  EXPECT_EQ(serial_report.engine_paths, parallel_report.engine_paths);
  EXPECT_EQ(serial_report.spec_paths, parallel_report.spec_paths);
  EXPECT_EQ(serial_report.manual_specs_verified, parallel_report.manual_specs_verified);
  EXPECT_EQ(serial_report.summaries_computed, parallel_report.summaries_computed);
}

TEST(PipelineStages, ReportCarriesEveryStage) {
  VerifyContext context;
  VerificationReport report = RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneA());
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  std::vector<std::string> names;
  for (const StageStats& stage : report.stages) {
    names.push_back(stage.stage);
    EXPECT_GE(stage.seconds, 0.0) << stage.stage;
    EXPECT_GE(stage.solve_seconds, 0.0) << stage.stage;
    EXPECT_LE(stage.solve_seconds, stage.seconds + 1e-9) << stage.stage;
  }
  EXPECT_EQ(names, (std::vector<std::string>{"compile", "lift", "explore.engine",
                                             "explore.spec", "compare", "confirm"}));
  // The compare stage is where solver checks happen on a clean zone.
  int64_t stage_checks = 0;
  for (const StageStats& stage : report.stages) {
    stage_checks += stage.solver_checks;
  }
  EXPECT_EQ(stage_checks, report.solver_checks)
      << "per-stage solver checks must add up to the report total";
}

TEST(PipelineStages, SafetyOnlySkipsSpecExploration) {
  VerifyContext context;
  VerifyOptions options;
  options.safety_only = true;
  VerificationReport report =
      RunVerifyPipeline(&context, EngineVersion::kGolden, ZoneA(), options);
  EXPECT_TRUE(report.verified) << report.ToString();
  for (const StageStats& stage : report.stages) {
    EXPECT_NE(stage.stage, "explore.spec") << "safety-only must not explore the spec";
  }
}

// Golden test for the new per-stage report rendering: handcrafted report, so
// the exact string is stable across machines.
TEST(PipelineStages, ReportToStringGolden) {
  VerificationReport report;
  report.version = EngineVersion::kGolden;
  report.verified = true;
  report.engine_paths = 12;
  report.spec_paths = 9;
  report.solver_checks = 34;
  report.solve_seconds = 0.5;
  report.total_seconds = 1.5;
  report.explored_in_parallel = true;
  report.pruned = true;
  report.panics_discharged = 5;
  report.paths_pruned = 7;
  StageStats compile;
  compile.stage = "compile";
  compile.seconds = 0.25;
  compile.from_cache = true;
  StageStats prune;
  prune.stage = "prune";
  prune.seconds = 0.125;
  prune.panics_discharged = 5;
  prune.paths_pruned = 7;
  StageStats explore;
  explore.stage = "explore.engine";
  explore.seconds = 1;
  explore.solver_checks = 34;
  explore.solve_seconds = 0.5;
  report.stages = {compile, prune, explore};
  // Stages with zero solver checks still print "0 solver checks": a zero and
  // a missing entry must stay distinguishable in report diffs.
  EXPECT_EQ(report.ToString(),
            "=== DNS-V report: engine golden ===\n"
            "VERIFIED: safety and functional correctness hold on this zone\n"
            "  engine paths: 12, spec paths: 9, solver checks: 34 (0.5s), total 1.5s\n"
            "  prune: 5 panics discharged, 7 paths pruned\n"
            "  stages (parallel exploration):\n"
            "    compile: 0.25s (cached), 0 solver checks (0s)\n"
            "    prune: 0.125s, 0 solver checks (0s), 5 panics discharged, 7 paths pruned\n"
            "    explore.engine: 1s, 34 solver checks (0.5s)\n");
}

TEST(PipelineAbort, InvalidZoneAbortsInLiftStage) {
  VerifyContext context;
  ZoneConfig no_soa;
  no_soa.origin = DnsName::Parse("bad.test").value();
  VerificationReport report = RunVerifyPipeline(&context, EngineVersion::kGolden, no_soa);
  EXPECT_TRUE(report.aborted);
  EXPECT_NE(report.abort_reason.find("SOA"), std::string::npos);
  // Failed lifts must not be cached: the compile stage ran, the lift did not
  // populate the zone cache.
  EXPECT_EQ(context.cache_stats().zone_cache_hits, 0);
}

}  // namespace
}  // namespace dnsv

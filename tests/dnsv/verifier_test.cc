// End-to-end verification tests: the full DNS-V workflow on real zones.
#include "src/dnsv/verifier.h"

#include <gtest/gtest.h>

#include "src/dnsv/layers.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

// A compact zone that still exercises wildcards, delegation, CNAME, and ENTs
// — small enough for fast exhaustive symbolic execution in unit tests.
ZoneConfig SmallVerificationZone() {
  return ParseZoneText(R"(
$ORIGIN v.test.
@      SOA   ns 1
@      NS    ns.v.test.
ns     A     192.0.2.1
www    A     192.0.2.2
*      TXT   7
)").value();
}

ZoneConfig DelegationZone() {
  return ParseZoneText(R"(
$ORIGIN d.test.
@        SOA  ns 1
@        NS   ns.d.test.
ns       A    192.0.2.1
sub      NS   ns.sub.d.test.
ns.sub   A    192.0.2.9
)").value();
}

TEST(VerifyGolden, SmallZoneVerifies) {
  VerificationReport report = VerifyEngine(EngineVersion::kGolden, SmallVerificationZone());
  EXPECT_TRUE(report.verified) << report.ToString();
  EXPECT_GT(report.engine_paths, 10);
  EXPECT_GT(report.spec_paths, 10);
}

TEST(VerifyGolden, DelegationZoneVerifies) {
  VerificationReport report = VerifyEngine(EngineVersion::kGolden, DelegationZone());
  EXPECT_TRUE(report.verified) << report.ToString();
}

TEST(VerifyV1, FindsWrongFlagOrAuthority) {
  VerificationReport report = VerifyEngine(EngineVersion::kV1, SmallVerificationZone());
  ASSERT_FALSE(report.verified) << report.ToString();
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  // Every reported issue must be confirmed by concrete re-execution.
  for (const VerificationIssue& issue : report.issues) {
    EXPECT_TRUE(issue.confirmed) << issue.ToString();
  }
}

TEST(VerifyDev, FindsRuntimeError) {
  VerificationReport report = VerifyEngine(EngineVersion::kDev, DelegationZone());
  ASSERT_FALSE(report.verified) << report.ToString();
  bool found_safety = false;
  for (const VerificationIssue& issue : report.issues) {
    if (issue.kind == VerificationIssue::Kind::kSafety) {
      found_safety = true;
      EXPECT_NE(issue.description.find("index out of range"), std::string::npos);
      EXPECT_TRUE(issue.confirmed) << issue.ToString();
    }
  }
  EXPECT_TRUE(found_safety) << report.ToString();
}

TEST(VerifySafetyOnly, GoldenHasNoReachablePanics) {
  VerifyOptions options;
  options.safety_only = true;
  VerificationReport report =
      VerifyEngine(EngineVersion::kGolden, SmallVerificationZone(), options);
  EXPECT_TRUE(report.verified) << report.ToString();
}

TEST(VerifyWithSummaries, GoldenStillVerifies) {
  VerifyOptions options;
  options.use_summaries = true;
  VerificationReport report =
      VerifyEngine(EngineVersion::kGolden, SmallVerificationZone(), options);
  EXPECT_TRUE(report.verified) << report.ToString();
  EXPECT_GT(report.summaries_computed, 0) << "summaries were never applied";
  EXPECT_GT(report.summary_applications, 0);
}

TEST(VerifyWithSummaries, V1BugsStillFound) {
  VerifyOptions options;
  options.use_summaries = true;
  VerificationReport report =
      VerifyEngine(EngineVersion::kV1, SmallVerificationZone(), options);
  ASSERT_FALSE(report.verified) << report.ToString();
  for (const VerificationIssue& issue : report.issues) {
    EXPECT_TRUE(issue.confirmed) << issue.ToString();
  }
}


TEST(VerifyV4, NewFeatureVerifiesWithAdaptedSpec) {
  // The porting workflow (§7): a feature iteration plus its O(10)-line spec
  // change re-verifies clean.
  VerificationReport report = VerifyEngine(EngineVersion::kV4, SmallVerificationZone());
  EXPECT_TRUE(report.verified) << report.ToString();
}


TEST(VerifyV5, EdnsIterationVerifiesWithAdaptedSpec) {
  // Second run of the same workflow: v5.0's qtype-OPT FORMERR guard plus the
  // FEATURE_EDNS spec gate re-verify clean — Explore/Compare/Confirm prove
  // the EDNS-era engine against the EDNS-era spec.
  VerificationReport report = VerifyEngine(EngineVersion::kV5, SmallVerificationZone());
  EXPECT_TRUE(report.verified) << report.ToString();
}


TEST(PathCoverage, GoldenPathsPartitionTheInputSpace) {
  VerifyOptions options;
  options.check_path_coverage = true;
  VerificationReport report =
      VerifyEngine(EngineVersion::kGolden, SmallVerificationZone(), options);
  EXPECT_TRUE(report.verified) << report.ToString();
  EXPECT_TRUE(report.path_coverage_checked);
}


TEST(VerifyWithSummaries, DevRuntimeErrorStillFound) {
  VerifyOptions options;
  options.use_summaries = true;
  VerificationReport report = VerifyEngine(EngineVersion::kDev, DelegationZone(), options);
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  ASSERT_FALSE(report.verified);
  bool found_safety = false;
  for (const VerificationIssue& issue : report.issues) {
    found_safety = found_safety || issue.kind == VerificationIssue::Kind::kSafety;
  }
  EXPECT_TRUE(found_safety) << report.ToString();
}

TEST(VerifyEngine, RejectsInvalidZoneGracefully) {
  ZoneConfig no_soa;
  no_soa.origin = DnsName::Parse("bad.test").value();
  VerificationReport report = VerifyEngine(EngineVersion::kGolden, no_soa);
  EXPECT_TRUE(report.aborted);
  EXPECT_NE(report.abort_reason.find("SOA"), std::string::npos);
}

TEST(Layers, LayerTableMatchesFigure5) {
  std::vector<LayerInfo> layers = EngineLayers(EngineVersion::kGolden);
  // Yellow + blue + top.
  std::vector<std::string> names;
  for (const LayerInfo& layer : layers) {
    names.push_back(layer.name);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"Name", "NodeStack", "RRSet", "Response", "TreeSearch",
                                      "Find", "Wildcard", "Additional", "Resolve"}));
  // v1.0 predates the Additional layer.
  EXPECT_EQ(EngineLayers(EngineVersion::kV1).size(), layers.size() - 1);
}



TEST(VerifyWithManualSpecs, RefinementDischargedAndSubstituted) {
  VerifyOptions options;
  options.use_manual_specs = true;
  VerificationReport report =
      VerifyEngine(EngineVersion::kGolden, SmallVerificationZone(), options);
  EXPECT_TRUE(report.verified) << report.ToString();
  EXPECT_EQ(report.manual_specs_verified, 1);
  EXPECT_GT(report.spec_substitutions, 0) << "nameEq call sites should use the abstract spec";
}

TEST(VerifyWithManualSpecs, V1BugsStillFoundUnderSpecSubstitution) {
  VerifyOptions options;
  options.use_manual_specs = true;
  options.use_summaries = true;  // both Fig.-6 branches at once
  VerificationReport report =
      VerifyEngine(EngineVersion::kV1, SmallVerificationZone(), options);
  ASSERT_FALSE(report.aborted) << report.abort_reason;
  ASSERT_FALSE(report.verified);
  for (const VerificationIssue& issue : report.issues) {
    EXPECT_TRUE(issue.confirmed) << issue.ToString();
  }
}

// Property sweep: on randomly generated zones, the golden engine verifies
// and monolithic vs summarization modes agree on the verdict and the number
// of feasible paths (the ablation soundness check, run per CI).
class RandomZoneVerify : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomZoneVerify, GoldenVerifiesBothModes) {
  ZoneGenOptions gen_options;
  gen_options.max_names = 3;  // compact zones keep symbolic execution fast
  gen_options.max_depth = 2;
  ZoneConfig zone = GenerateZone(GetParam(), gen_options);
  VerifyOptions mono_options;
  VerificationReport mono = VerifyEngine(EngineVersion::kGolden, zone, mono_options);
  ASSERT_FALSE(mono.aborted) << mono.abort_reason << "\n" << zone.ToText();
  EXPECT_TRUE(mono.verified) << mono.ToString() << zone.ToText();
  VerifyOptions summary_options;
  summary_options.use_summaries = true;
  VerificationReport summ = VerifyEngine(EngineVersion::kGolden, zone, summary_options);
  ASSERT_FALSE(summ.aborted) << summ.abort_reason;
  EXPECT_EQ(mono.verified, summ.verified);
  EXPECT_EQ(mono.engine_paths, summ.engine_paths)
      << "summaries must preserve the feasible path set";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomZoneVerify,
                         ::testing::Values(uint64_t{3}, uint64_t{5}, uint64_t{8},
                                           uint64_t{13}));

TEST(VerifyV3, FindsEntWildcardBugWithClassification) {
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN e.test.
@        SOA ns 1
@        NS  ns.e.test.
ns       A   192.0.2.1
*        TXT 9
deep.box A   192.0.2.2
)").value();
  VerificationReport report = VerifyEngine(EngineVersion::kV3, zone);
  ASSERT_FALSE(report.verified) << report.ToString();
  bool classified = false;
  for (const VerificationIssue& issue : report.issues) {
    classified = classified || issue.classification.find("Wrong Answer") != std::string::npos;
  }
  EXPECT_TRUE(classified) << report.ToString();
}

TEST(VerifyReport, ToStringContainsCounterexample) {
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN r.test.
@   SOA ns 1
@   NS  ns.r.test.
ns  A   192.0.2.1
*   TXT 5
)").value();
  VerificationReport report = VerifyEngine(EngineVersion::kV1, zone);
  ASSERT_FALSE(report.verified);
  std::string text = report.ToString();
  EXPECT_NE(text.find("counterexample:"), std::string::npos);
  EXPECT_NE(text.find("confirmed on the concrete interpreter"), std::string::npos);
}

TEST(Layers, MeasureLayerTimesProducesSaneRows) {
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN m.test.
@   SOA ns 1
@   NS  ns.m.test.
ns  A   192.0.2.1
www A   192.0.2.2
)").value();
  std::vector<LayerTiming> timings = MeasureLayerTimes(EngineVersion::kGolden, zone);
  ASSERT_EQ(timings.size(), EngineLayers(EngineVersion::kGolden).size());
  for (const LayerTiming& timing : timings) {
    EXPECT_TRUE(timing.ok) << timing.layer << ": " << timing.note;
    EXPECT_GE(timing.seconds, 0.0);
    if (timing.layer != "Response" && timing.layer != "Additional") {
      EXPECT_GT(timing.paths, 0) << timing.layer;
    }
  }
}

}  // namespace
}  // namespace dnsv

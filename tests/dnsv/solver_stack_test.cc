// Differential test for the solver-access layer (src/smt/backend.h): running
// the verification pipeline with the query cache + interval pre-solver
// enabled must be observably identical to running it with the layers off —
// same verdicts, same counterexamples (byte for byte), same path counts — on
// every engine version, while strictly reducing the number of checks that
// reach Z3. A separate shadow-validated run re-checks every cached and
// presolved verdict against Z3 and must report zero mismatches.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/dnsv/pipeline.h"
#include "src/smt/query_cache.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// DNSV_SOLVER_FORCE collapses the on/off configurations into one, which
// voids the strict-reduction assertions (the byte-identity ones still hold).
bool EnvForced() { return std::getenv("DNSV_SOLVER_FORCE") != nullptr; }

// Everything observable about a run that must not depend on solver layering.
struct Observables {
  std::string text;
  int64_t engine_paths = 0;
  int64_t spec_paths = 0;

  static Observables From(const VerificationReport& report) {
    Observables obs;
    obs.engine_paths = report.engine_paths;
    obs.spec_paths = report.spec_paths;
    obs.text = StrCat("version=", EngineVersionName(report.version),
                      " verified=", report.verified ? 1 : 0, " aborted=",
                      report.aborted ? 1 : 0, " reason=", report.abort_reason, "\n");
    for (const VerificationIssue& issue : report.issues) {
      obs.text += issue.ToString();
    }
    return obs;
  }
};

VerificationReport RunWith(VerifyContext* context, EngineVersion version,
                           const SolverConfig& solver) {
  VerifyOptions options;
  options.use_summaries = true;
  options.solver = solver;
  return RunVerifyPipeline(context, version, Figure11Zone(), options);
}

TEST(SolverStackDifferential, LayersPreserveEveryObservableOnAllVersions) {
  // One cache shared across all six versions, exactly as production shares
  // the process-wide cache: later versions must benefit from earlier ones
  // without observing them.
  QueryCache cache;
  SolverConfig layered;
  layered.layering = SolverLayering::kCachePresolve;
  layered.cache = &cache;

  VerifyContext baseline_context;
  VerifyContext layered_context;
  for (EngineVersion version : AllEngineVersions()) {
    SCOPED_TRACE(EngineVersionName(version));
    VerificationReport baseline = RunWith(&baseline_context, version, SolverConfig{});
    VerificationReport with_layers = RunWith(&layered_context, version, layered);

    Observables a = Observables::From(baseline);
    Observables b = Observables::From(with_layers);
    EXPECT_EQ(a.text, b.text);  // verdicts + counterexamples, byte for byte
    EXPECT_EQ(a.engine_paths, b.engine_paths);
    EXPECT_EQ(a.spec_paths, b.spec_paths);

    if (!EnvForced()) {
      // The acceptance criterion: strictly fewer checks reach Z3.
      EXPECT_LT(with_layers.solver.z3_checks, baseline.solver.z3_checks);
      EXPECT_GT(with_layers.solver.cache_hits + with_layers.solver.presolver_discharges,
                0);
    }
  }
}

TEST(SolverStackDifferential, CacheSharesAcrossWorkersAndRuns) {
  // Cache-only layering (no pre-solver in front absorbing the recurring
  // bound queries): the engine and spec workers hit each other's entries
  // within one run, and a second identical run is served entirely from the
  // cache — zero new misses.
  QueryCache cache;
  SolverConfig cache_only;
  cache_only.layering = SolverLayering::kCache;
  cache_only.cache = &cache;
  VerifyContext context;
  RunWith(&context, EngineVersion::kGolden, cache_only);
  QueryCache::Stats first = cache.stats();
  if (!EnvForced()) {
    EXPECT_GT(first.hits, 0);  // cross-worker sharing within the first run
  }
  RunWith(&context, EngineVersion::kGolden, cache_only);
  QueryCache::Stats second = cache.stats();
  if (!EnvForced()) {
    EXPECT_EQ(second.misses, first.misses);
    EXPECT_GT(second.hits, first.hits);
  }
}

TEST(SolverStackDifferential, ShadowValidationReportsZeroMismatches) {
  QueryCache cache;
  SolverConfig shadow;
  shadow.layering = SolverLayering::kCachePresolve;
  shadow.cache = &cache;
  shadow.shadow_validate = true;  // every layered verdict re-checked on Z3

  VerifyContext context;
  int64_t total_shadow_checks = 0;
  for (EngineVersion version : AllEngineVersions()) {
    SCOPED_TRACE(EngineVersionName(version));
    VerificationReport report = RunWith(&context, version, shadow);
    EXPECT_EQ(report.solver.shadow_mismatches, 0);
    total_shadow_checks += report.solver.shadow_checks;
  }
  if (!EnvForced()) {
    EXPECT_GT(total_shadow_checks, 0);  // the mode actually validated something
  }
}

TEST(SolverStackDifferential, ReportPrintsSolverLayerLineOnlyWhenLayered) {
  VerifyContext context;
  QueryCache cache;
  SolverConfig layered;
  layered.layering = SolverLayering::kCachePresolve;
  layered.cache = &cache;
  VerificationReport baseline =
      RunWith(&context, EngineVersion::kGolden, SolverConfig{});
  VerificationReport with_layers = RunWith(&context, EngineVersion::kGolden, layered);
  if (!EnvForced()) {
    EXPECT_EQ(baseline.ToString().find("solver layer:"), std::string::npos);
    EXPECT_NE(with_layers.ToString().find("solver layer:"), std::string::npos);
  }
}

}  // namespace
}  // namespace dnsv

// Cross-validation of the symbolic executor against the concrete
// interpreter: pinning the symbolic query to a concrete value must leave
// exactly one feasible path whose final response equals the interpreter's.
// This is the strongest internal consistency check between the two
// evaluators (they share only the IR).
#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/sym/refine.h"
#include "src/support/strings.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

class CrossCheck {
 public:
  CrossCheck(EngineVersion version, const ZoneConfig& zone) {
    server_ = std::move(AuthoritativeServer::Create(version, zone).value());
    arena_ = std::make_unique<TermArena>();
    solver_ = std::make_unique<SolverSession>(arena_.get());
    base_memory_ = LiftMemory(server_->memory(), arena_.get());
    apex_ = LiftValue(server_->heap_image().apex_ptr, arena_.get());
    origin_ = LiftValue(server_->heap_image().origin_labels, arena_.get());
  }

  // Runs qname/qtype symbolically-but-pinned and concretely; EXPECTs equality.
  void Check(const DnsName& qname, RrType qtype) {
    // Concrete run.
    QueryResult concrete = server_->Query(qname, qtype);

    // Symbolic run with the query pinned through the path condition, shaped
    // exactly like the verifier's inputs (same capacity, same variables).
    int capacity = static_cast<int>(qname.NumLabels()) + 1;
    SymbolicIntList sym_qname = MakeSymbolicIntList(
        arena_.get(), StrCat("xq", counter_), capacity, 1, server_->interner().max_code());
    SymbolicInt sym_qtype =
        MakeSymbolicInt(arena_.get(), StrCat("xt", counter_), 1, 255);
    ++counter_;
    std::vector<int64_t> codes = server_->interner().InternName(qname);
    std::vector<Term> pins = {
        arena_->Eq(sym_qname.value.list_len,
                   arena_->IntConst(static_cast<int64_t>(codes.size()))),
        arena_->Eq(sym_qtype.value.term, arena_->IntConst(static_cast<int64_t>(qtype)))};
    for (size_t i = 0; i < codes.size(); ++i) {
      pins.push_back(arena_->Eq(sym_qname.value.elems[i].term, arena_->IntConst(codes[i])));
    }
    SymState state;
    state.memory = base_memory_;
    state.pc = arena_->AndN({sym_qname.constraints, sym_qtype.constraints,
                             arena_->AndN(pins)});
    SymExecutor executor(&server_->engine().module(), arena_.get(), solver_.get());
    std::vector<PathOutcome> outcomes =
        executor.Explore(server_->engine().resolve_fn(),
                         {apex_, origin_, sym_qname.value, sym_qtype.value}, state);
    ASSERT_EQ(outcomes.size(), 1u) << "pinned query must leave exactly one feasible path";
    const PathOutcome& outcome = outcomes[0];
    if (concrete.panicked) {
      EXPECT_EQ(outcome.kind, PathOutcome::Kind::kPanicked);
      EXPECT_EQ(outcome.panic_message, concrete.panic_message);
      return;
    }
    ASSERT_EQ(outcome.kind, PathOutcome::Kind::kReturned)
        << "symbolic: " << outcome.panic_message;
    const SymValue* response = outcome.state.memory.Resolve(outcome.return_value.block,
                                                            outcome.return_value.path);
    ASSERT_NE(response, nullptr);
    // Values may still carry the pinned variables (the pins live in the path
    // condition); resolve them through a model of that condition.
    ASSERT_EQ(solver_->CheckAssuming(outcome.state.pc), SatResult::kSat);
    Model model = solver_->GetModel();
    Value concrete_response = ConcretizeValue(*response, *arena_, &model);
    ResponseView symbolic_view =
        DecodeResponse(concrete_response, server_->memory(), server_->interner(),
                       server_->engine().module().types());
    EXPECT_EQ(symbolic_view, concrete.response)
        << qname.ToString() << " " << RrTypeName(qtype) << "\nsymbolic:\n"
        << symbolic_view.ToString() << "concrete:\n" << concrete.response.ToString();
  }

 private:
  std::unique_ptr<AuthoritativeServer> server_;
  std::unique_ptr<TermArena> arena_;
  std::unique_ptr<SolverSession> solver_;
  SymMemory base_memory_;
  SymValue apex_, origin_;
  int counter_ = 0;
};

TEST(SymbolicVsConcrete, KitchenSinkScenarios) {
  CrossCheck check(EngineVersion::kGolden, KitchenSinkZone());
  const std::pair<const char*, RrType> probes[] = {
      {"www.example.com", RrType::kA},        // exact
      {"www.example.com", RrType::kAny},      // ANY
      {"chain.example.com", RrType::kA},      // CNAME chain
      {"host.dyn.example.com", RrType::kMx},  // wildcard + glue
      {"deep.sub.example.com", RrType::kA},   // referral + glue
      {"ent.example.com", RrType::kTxt},      // ENT NODATA
      {"missing.example.com", RrType::kA},    // NXDOMAIN
      {"www.elsewhere.org", RrType::kA},      // REFUSED
      {"example.com", RrType::kNs},           // apex
  };
  for (const auto& [qname, qtype] : probes) {
    check.Check(DnsName::Parse(qname).value(), qtype);
  }
}

TEST(SymbolicVsConcrete, DevCrashReproducesSymbolically) {
  CrossCheck check(EngineVersion::kDev, KitchenSinkZone());
  // The bug-9 query: both evaluators must agree on the panic.
  check.Check(DnsName::Parse("missing.example.com").value(), RrType::kA);
}

// Random sweep: generated zone, every interesting query name, two types.
class SymbolicVsConcreteSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymbolicVsConcreteSweep, RandomZone) {
  ZoneGenOptions options;
  options.max_names = 3;
  options.max_depth = 2;
  ZoneConfig zone = GenerateZone(GetParam(), options);
  CrossCheck check(EngineVersion::kGolden, zone);
  int probes = 0;
  for (const DnsName& qname : InterestingQueryNames(zone, GetParam(), 2)) {
    check.Check(qname, RrType::kA);
    check.Check(qname, RrType::kAny);
    if (++probes >= 12) {
      break;  // bound runtime
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicVsConcreteSweep,
                         ::testing::Values(uint64_t{21}, uint64_t{22}, uint64_t{23}));


// DomainTree layer refinement (yellow layer, Fig. 5): the BST walk findChild
// must equal the order-blind exhaustive search findChildSpec for every
// symbolic label over the concrete heap. Passing this also certifies the
// control plane's BST ordering invariant.
TEST(DomainTreeRefinement, FindChildRefinesExhaustiveSearch) {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  TermArena arena;
  SolverSession solver(&arena);
  SymMemory base_memory = LiftMemory(server->memory(), &arena);
  SymExecutor executor(&server->engine().module(), &arena, &solver);
  SymbolicInt label = MakeSymbolicInt(&arena, "label", 1, server->interner().max_code());
  // Check refinement from every per-level BST root in the tree.
  StructLayout node_layout(server->engine().module().types(), kStructTreeNode);
  int checked = 0;
  for (int b = 1; b <= server->heap_image().num_tree_nodes; ++b) {
    const SymValue* node = base_memory.Resolve(static_cast<BlockIndex>(b), {});
    ASSERT_NE(node, nullptr);
    const SymValue& down = node->elems[node_layout.index("down")];
    if (down.IsNullPtr()) {
      continue;
    }
    SymState state;
    state.memory = base_memory;
    state.pc = label.constraints;
    RefinementResult result = CheckFunctionRefinement(
        &executor, *server->engine().module().GetFunction("findChild"),
        *server->engine().module().GetFunction("findChildSpec"), {down, label.value}, state);
    EXPECT_TRUE(result.ok())
        << "BST rooted at block " << down.block << ": "
        << (result.mismatches.empty() ? result.abort_reason
                                      : result.mismatches[0].description);
    ++checked;
  }
  EXPECT_GT(checked, 2);  // the kitchen-sink zone has several non-leaf levels
}

// Negative control: deliberately corrupt the BST order in a copied heap and
// confirm the refinement check notices (i.e. the proof is not vacuous).
TEST(DomainTreeRefinement, CorruptedBstIsRejected) {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  TermArena arena;
  SolverSession solver(&arena);
  SymMemory base_memory = LiftMemory(server->memory(), &arena);
  StructLayout node_layout(server->engine().module().types(), kStructTreeNode);
  // Find a BST root with a left child and swap the child's label with an
  // impossible one by breaking the order: set root label below its left
  // child's label.
  bool corrupted = false;
  SymValue corrupt_root;
  for (int b = 1; b <= server->heap_image().num_tree_nodes && !corrupted; ++b) {
    SymValue* node = base_memory.Resolve(static_cast<BlockIndex>(b), {});
    const SymValue& down = node->elems[node_layout.index("down")];
    if (down.IsNullPtr()) {
      continue;
    }
    SymValue* root = base_memory.Resolve(down.block, down.path);
    const SymValue& left = root->elems[node_layout.index("left")];
    if (left.IsNullPtr()) {
      continue;
    }
    // Order violation: the root's label becomes smaller than everything.
    root->elems[node_layout.index("label")] = SymValue::OfTerm(arena.IntConst(1));
    corrupt_root = down;
    corrupted = true;
  }
  ASSERT_TRUE(corrupted) << "zone has no BST with a left child";
  SymExecutor executor(&server->engine().module(), &arena, &solver);
  SymbolicInt label = MakeSymbolicInt(&arena, "label", 1, server->interner().max_code());
  SymState state;
  state.memory = base_memory;
  state.pc = label.constraints;
  RefinementResult result = CheckFunctionRefinement(
      &executor, *server->engine().module().GetFunction("findChild"),
      *server->engine().module().GetFunction("findChildSpec"), {corrupt_root, label.value},
      state);
  EXPECT_FALSE(result.ok()) << "refinement must fail on an order-violating BST";
}

}  // namespace
}  // namespace dnsv

// Tests for TermArena::Substitute — the mechanism that rebinds a summary's
// formal input variables to a caller's actual terms (paper §5.3).
#include <gtest/gtest.h>

#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace dnsv {
namespace {

class SubstTest : public ::testing::Test {
 protected:
  TermArena arena_;
};

TEST_F(SubstTest, ReplacesVariables) {
  Term x = arena_.Var("x", Sort::kInt);
  Term y = arena_.Var("y", Sort::kInt);
  Term e = arena_.Add(x, arena_.Mul(y, arena_.IntConst(2)));
  Term replaced = arena_.Substitute(e, {{x.id(), arena_.IntConst(3)},
                                        {y.id(), arena_.IntConst(5)}});
  int64_t v = 0;
  ASSERT_TRUE(arena_.AsIntConst(replaced, &v));
  EXPECT_EQ(v, 13);
}

TEST_F(SubstTest, UntouchedTermReturnsSameHandle) {
  Term x = arena_.Var("x", Sort::kInt);
  Term z = arena_.Var("z", Sort::kInt);
  Term e = arena_.Lt(x, arena_.IntConst(10));
  // Substituting an unrelated variable changes nothing — same interned term.
  EXPECT_EQ(arena_.Substitute(e, {{z.id(), arena_.IntConst(1)}}), e);
}

TEST_F(SubstTest, VariableForVariable) {
  Term x = arena_.Var("x", Sort::kInt);
  Term y = arena_.Var("y", Sort::kInt);
  Term e = arena_.Le(x, arena_.IntConst(4));
  Term replaced = arena_.Substitute(e, {{x.id(), y}});
  EXPECT_EQ(arena_.ToString(replaced), "(<= y 4)");
}

TEST_F(SubstTest, SimplifiesDuringRebuild) {
  Term p = arena_.Var("p", Sort::kBool);
  Term q = arena_.Var("q", Sort::kBool);
  Term e = arena_.And(p, q);
  // p := true collapses the conjunction to q.
  EXPECT_EQ(arena_.Substitute(e, {{p.id(), arena_.True()}}), q);
  // p := false collapses the whole thing.
  EXPECT_EQ(arena_.Substitute(e, {{p.id(), arena_.False()}}), arena_.False());
}

TEST_F(SubstTest, NestedBooleanStructure) {
  Term a = arena_.Var("a", Sort::kInt);
  Term b = arena_.Var("b", Sort::kInt);
  Term cond = arena_.Or(arena_.Lt(a, b), arena_.Eq(a, arena_.IntConst(0)));
  Term replaced = arena_.Substitute(cond, {{a.id(), arena_.IntConst(0)}});
  // (0 < b) || (0 == 0) simplifies to true.
  EXPECT_EQ(replaced, arena_.True());
}

TEST_F(SubstTest, IteAndComparisonOperands) {
  Term c = arena_.Var("c", Sort::kBool);
  Term x = arena_.Var("x", Sort::kInt);
  Term e = arena_.Ite(c, x, arena_.IntConst(7));
  Term replaced = arena_.Substitute(e, {{c.id(), arena_.True()},
                                        {x.id(), arena_.IntConst(9)}});
  int64_t v = 0;
  ASSERT_TRUE(arena_.AsIntConst(replaced, &v));
  EXPECT_EQ(v, 9);
}

TEST_F(SubstTest, SemanticEquivalenceUnderSolver) {
  // forall y: subst(e, x:=y+1) must equal e[x -> y+1] semantically.
  Term x = arena_.Var("x", Sort::kInt);
  Term y = arena_.Var("y", Sort::kInt);
  Term e = arena_.Mul(arena_.Add(x, arena_.IntConst(1)), x);
  Term replaced = arena_.Substitute(e, {{x.id(), arena_.Add(y, arena_.IntConst(1))}});
  Term expected = arena_.Mul(arena_.Add(arena_.Add(y, arena_.IntConst(1)), arena_.IntConst(1)),
                             arena_.Add(y, arena_.IntConst(1)));
  SolverSession solver(&arena_);
  solver.Assert(arena_.Ne(replaced, expected));
  EXPECT_EQ(solver.Check(), SatResult::kUnsat);
}

}  // namespace
}  // namespace dnsv

#include "src/smt/term.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermArena arena_;
};

TEST_F(TermTest, HashConsingDeduplicates) {
  Term a = arena_.Var("x", Sort::kInt);
  Term b = arena_.Var("y", Sort::kInt);
  EXPECT_EQ(arena_.Add(a, b), arena_.Add(a, b));
  EXPECT_EQ(arena_.IntConst(5), arena_.IntConst(5));
  EXPECT_NE(arena_.IntConst(5), arena_.IntConst(6));
}

TEST_F(TermTest, VarReuseByName) {
  Term x1 = arena_.Var("qtype", Sort::kInt);
  Term x2 = arena_.Var("qtype", Sort::kInt);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(arena_.VarName(x1), "qtype");
}

TEST_F(TermTest, ConstantFolding) {
  int64_t v = 0;
  EXPECT_TRUE(arena_.AsIntConst(arena_.Add(arena_.IntConst(2), arena_.IntConst(3)), &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(arena_.AsIntConst(arena_.Mul(arena_.IntConst(4), arena_.IntConst(-3)), &v));
  EXPECT_EQ(v, -12);
  EXPECT_TRUE(arena_.AsIntConst(arena_.Sub(arena_.IntConst(1), arena_.IntConst(9)), &v));
  EXPECT_EQ(v, -8);
}

TEST_F(TermTest, GoDivModConstants) {
  int64_t v = 0;
  EXPECT_TRUE(arena_.AsIntConst(arena_.Div(arena_.IntConst(-7), arena_.IntConst(2)), &v));
  EXPECT_EQ(v, -3);  // trunc toward zero
  EXPECT_TRUE(arena_.AsIntConst(arena_.Mod(arena_.IntConst(-7), arena_.IntConst(2)), &v));
  EXPECT_EQ(v, -1);  // sign of dividend
}

TEST_F(TermTest, IdentitySimplifications) {
  Term x = arena_.Var("x", Sort::kInt);
  EXPECT_EQ(arena_.Add(x, arena_.IntConst(0)), x);
  EXPECT_EQ(arena_.Add(arena_.IntConst(0), x), x);
  EXPECT_EQ(arena_.Mul(x, arena_.IntConst(1)), x);
  EXPECT_EQ(arena_.Mul(x, arena_.IntConst(0)), arena_.IntConst(0));
  EXPECT_EQ(arena_.Sub(x, x), arena_.IntConst(0));
}

TEST_F(TermTest, ComparisonSimplifications) {
  Term x = arena_.Var("x", Sort::kInt);
  EXPECT_EQ(arena_.Eq(x, x), arena_.True());
  EXPECT_EQ(arena_.Lt(x, x), arena_.False());
  EXPECT_EQ(arena_.Le(x, x), arena_.True());
  EXPECT_EQ(arena_.Eq(arena_.IntConst(1), arena_.IntConst(2)), arena_.False());
}

TEST_F(TermTest, EqIsOrderCanonical) {
  Term x = arena_.Var("x", Sort::kInt);
  Term y = arena_.Var("y", Sort::kInt);
  EXPECT_EQ(arena_.Eq(x, y), arena_.Eq(y, x));
}

TEST_F(TermTest, BooleanSimplifications) {
  Term p = arena_.Var("p", Sort::kBool);
  EXPECT_EQ(arena_.And(p, arena_.True()), p);
  EXPECT_EQ(arena_.And(p, arena_.False()), arena_.False());
  EXPECT_EQ(arena_.Or(p, arena_.False()), p);
  EXPECT_EQ(arena_.Or(p, arena_.True()), arena_.True());
  EXPECT_EQ(arena_.Not(arena_.Not(p)), p);
  EXPECT_EQ(arena_.And(p, arena_.Not(p)), arena_.False());
  EXPECT_EQ(arena_.Or(p, arena_.Not(p)), arena_.True());
}

TEST_F(TermTest, AndFlattensAndDedups) {
  Term p = arena_.Var("p", Sort::kBool);
  Term q = arena_.Var("q", Sort::kBool);
  Term r = arena_.Var("r", Sort::kBool);
  Term pq = arena_.And(p, q);
  Term all = arena_.And(pq, arena_.And(q, r));
  const TermNode& n = arena_.node(all);
  EXPECT_EQ(n.kind, TermKind::kAnd);
  EXPECT_EQ(n.operands.size(), 3u);  // p, q, r — q deduped
}

TEST_F(TermTest, IteSimplifications) {
  Term x = arena_.Var("x", Sort::kInt);
  Term y = arena_.Var("y", Sort::kInt);
  Term p = arena_.Var("p", Sort::kBool);
  EXPECT_EQ(arena_.Ite(arena_.True(), x, y), x);
  EXPECT_EQ(arena_.Ite(arena_.False(), x, y), y);
  EXPECT_EQ(arena_.Ite(p, x, x), x);
}

TEST_F(TermTest, BoolEqSimplifications) {
  Term p = arena_.Var("p", Sort::kBool);
  EXPECT_EQ(arena_.Eq(p, arena_.True()), p);
  EXPECT_EQ(arena_.Eq(p, arena_.False()), arena_.Not(p));
  EXPECT_EQ(arena_.Eq(arena_.True(), arena_.False()), arena_.False());
}

TEST_F(TermTest, ToStringReadable) {
  Term x = arena_.Var("x", Sort::kInt);
  Term e = arena_.Lt(arena_.Add(x, arena_.IntConst(1)), arena_.IntConst(10));
  EXPECT_EQ(arena_.ToString(e), "(< (+ x 1) 10)");
}

}  // namespace
}  // namespace dnsv

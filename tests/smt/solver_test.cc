#include "src/smt/solver.h"

#include <gtest/gtest.h>

#include "src/smt/term.h"

namespace dnsv {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : solver_(&arena_) {}
  TermArena arena_;
  SolverSession solver_;
};

TEST_F(SolverTest, TrivialSat) {
  Term x = arena_.Var("x", Sort::kInt);
  solver_.Assert(arena_.Eq(x, arena_.IntConst(3)));
  EXPECT_EQ(solver_.Check(), SatResult::kSat);
  Model m = solver_.GetModel();
  int64_t v = 0;
  ASSERT_TRUE(m.Get("x", &v));
  EXPECT_EQ(v, 3);
}

TEST_F(SolverTest, TrivialUnsat) {
  Term x = arena_.Var("x", Sort::kInt);
  solver_.Assert(arena_.Lt(x, arena_.IntConst(0)));
  solver_.Assert(arena_.Lt(arena_.IntConst(0), x));
  EXPECT_EQ(solver_.Check(), SatResult::kUnsat);
}

TEST_F(SolverTest, PushPopRestoresState) {
  Term x = arena_.Var("x", Sort::kInt);
  solver_.Assert(arena_.Le(arena_.IntConst(0), x));
  solver_.Push();
  solver_.Assert(arena_.Lt(x, arena_.IntConst(0)));
  EXPECT_EQ(solver_.Check(), SatResult::kUnsat);
  solver_.Pop();
  EXPECT_EQ(solver_.Check(), SatResult::kSat);
}

TEST_F(SolverTest, CheckAssumingDoesNotPersist) {
  Term x = arena_.Var("x", Sort::kInt);
  solver_.Assert(arena_.Eq(x, arena_.IntConst(1)));
  EXPECT_EQ(solver_.CheckAssuming(arena_.Eq(x, arena_.IntConst(2))), SatResult::kUnsat);
  EXPECT_EQ(solver_.Check(), SatResult::kSat);
}

TEST_F(SolverTest, GoDivisionSemantics) {
  // -7 / 2 == -3 and -7 % 2 == -1 under Go truncation.
  Term a = arena_.Var("a", Sort::kInt);
  Term q = arena_.Var("q", Sort::kInt);
  Term r = arena_.Var("r", Sort::kInt);
  solver_.Assert(arena_.Eq(a, arena_.IntConst(-7)));
  solver_.Assert(arena_.Eq(q, arena_.Div(a, arena_.IntConst(2))));
  solver_.Assert(arena_.Eq(r, arena_.Mod(a, arena_.IntConst(2))));
  ASSERT_EQ(solver_.Check(), SatResult::kSat);
  Model m = solver_.GetModel();
  int64_t v = 0;
  ASSERT_TRUE(m.Get("q", &v));
  EXPECT_EQ(v, -3);
  ASSERT_TRUE(m.Get("r", &v));
  EXPECT_EQ(v, -1);
}

// Property sweep: symbolic div/mod must agree with C++'s (== Go's) semantics
// for every sign combination.
class DivModParamTest : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(DivModParamTest, MatchesTruncatedSemantics) {
  auto [a_val, b_val] = GetParam();
  TermArena arena;
  SolverSession solver(&arena);
  Term a = arena.Var("a", Sort::kInt);
  Term b = arena.Var("b", Sort::kInt);
  solver.Assert(arena.Eq(a, arena.IntConst(a_val)));
  solver.Assert(arena.Eq(b, arena.IntConst(b_val)));
  // Claim the symbolic result differs from the concrete one: must be UNSAT.
  Term bad = arena.OrN({arena.Ne(arena.Div(a, b), arena.IntConst(a_val / b_val)),
                        arena.Ne(arena.Mod(a, b), arena.IntConst(a_val % b_val))});
  solver.Assert(bad);
  EXPECT_EQ(solver.Check(), SatResult::kUnsat)
      << "a=" << a_val << " b=" << b_val;
}

INSTANTIATE_TEST_SUITE_P(
    SignCombinations, DivModParamTest,
    ::testing::Values(std::pair<int64_t, int64_t>{7, 2}, std::pair<int64_t, int64_t>{-7, 2},
                      std::pair<int64_t, int64_t>{7, -2}, std::pair<int64_t, int64_t>{-7, -2},
                      std::pair<int64_t, int64_t>{6, 3}, std::pair<int64_t, int64_t>{-6, 3},
                      std::pair<int64_t, int64_t>{6, -3}, std::pair<int64_t, int64_t>{-6, -3},
                      std::pair<int64_t, int64_t>{0, 5}, std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{-1, 1}, std::pair<int64_t, int64_t>{13, 5},
                      std::pair<int64_t, int64_t>{-13, 5}, std::pair<int64_t, int64_t>{13, -5},
                      std::pair<int64_t, int64_t>{-13, -5}));

TEST_F(SolverTest, ModelForBooleanVars) {
  Term p = arena_.Var("p", Sort::kBool);
  solver_.Assert(p);
  ASSERT_EQ(solver_.Check(), SatResult::kSat);
  Model m = solver_.GetModel();
  int64_t v = 0;
  ASSERT_TRUE(m.Get("p", &v));
  EXPECT_EQ(v, 1);
}

TEST_F(SolverTest, LinearArithmetic) {
  // The paper's summaries produce conjunctions of simple LIA constraints;
  // make sure a representative one solves instantly.
  Term n0 = arena_.Var("n0", Sort::kInt);
  Term n1 = arena_.Var("n1", Sort::kInt);
  Term len = arena_.Var("nameLen", Sort::kInt);
  std::vector<Term> cond = {
      arena_.Ge(len, arena_.IntConst(3)),
      arena_.Eq(n0, arena_.IntConst(100)),   // int("com")
      arena_.Eq(n1, arena_.IntConst(200)),   // int("example")
  };
  solver_.Assert(arena_.AndN(cond));
  EXPECT_EQ(solver_.Check(), SatResult::kSat);
  solver_.Assert(arena_.Lt(len, arena_.IntConst(3)));
  EXPECT_EQ(solver_.Check(), SatResult::kUnsat);
}

}  // namespace
}  // namespace dnsv

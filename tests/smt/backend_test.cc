// Unit tests for the solver-access layer: query canonicalization, the
// process-wide verdict cache, the caching backend's hit/replay behavior, the
// interval pre-solver's decision procedure, and the facade's assert dedupe.
#include <gtest/gtest.h>

#include "src/smt/backend.h"
#include "src/smt/caching_backend.h"
#include "src/smt/canon.h"
#include "src/smt/interval_presolver.h"
#include "src/smt/query_cache.h"
#include "src/smt/solver.h"
#include "src/smt/z3_backend.h"

namespace dnsv {
namespace {

// --- Canonicalization -------------------------------------------------------

TEST(Canon, ConjunctOrderDoesNotMatter) {
  TermArena arena;
  QueryCanonicalizer canon(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term y = arena.Var("y", Sort::kInt);
  Term a = arena.Lt(x, arena.IntConst(5));
  Term b = arena.Le(arena.IntConst(0), y);
  EXPECT_EQ(canon.CanonicalKey({a, b}), canon.CanonicalKey({b, a}));
}

TEST(Canon, DuplicateConjunctsCollapse) {
  TermArena arena;
  QueryCanonicalizer canon(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term a = arena.Lt(x, arena.IntConst(5));
  EXPECT_EQ(canon.CanonicalKey({a, a}), canon.CanonicalKey({a}));
}

TEST(Canon, NestedAndFlattens) {
  TermArena arena;
  QueryCanonicalizer canon(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term y = arena.Var("y", Sort::kInt);
  Term a = arena.Lt(x, arena.IntConst(5));
  Term b = arena.Le(arena.IntConst(0), y);
  EXPECT_EQ(canon.CanonicalKey({arena.And(a, b)}), canon.CanonicalKey({a, b}));
}

TEST(Canon, AlphaEquivalentQueriesShareAKey) {
  // Same shape, different variable names — the keys must collide so the
  // engine workers and the spec workers (whose internal variables differ
  // only by name) share cache entries.
  TermArena arena;
  QueryCanonicalizer canon(&arena);
  Term x = arena.Var("eng!pad.0", Sort::kInt);
  Term y = arena.Var("spec!pad.7", Sort::kInt);
  std::string kx = canon.CanonicalKey({arena.Lt(x, arena.IntConst(5))});
  std::string ky = canon.CanonicalKey({arena.Lt(y, arena.IntConst(5))});
  EXPECT_EQ(kx, ky);
}

TEST(Canon, DifferentSortsDoNotCollide) {
  TermArena arena;
  QueryCanonicalizer canon(&arena);
  Term i = arena.Var("v", Sort::kInt);
  Term b = arena.Var("w", Sort::kBool);
  std::string ki = canon.CanonicalKey({arena.Eq(i, arena.IntConst(0))});
  std::string kb = canon.CanonicalKey({b});
  EXPECT_NE(ki, kb);
}

TEST(Canon, KeysAreStableAcrossArenas) {
  // The cache is shared across workers with unrelated arenas: the same
  // formula built in a different arena (different term ids) must produce the
  // same key.
  TermArena arena1, arena2;
  QueryCanonicalizer canon1(&arena1), canon2(&arena2);
  // Pad arena2 so the ids diverge.
  arena2.Var("unrelated", Sort::kInt);
  arena2.IntConst(12345);
  Term x1 = arena1.Var("qname.0", Sort::kInt);
  Term x2 = arena2.Var("qname.0", Sort::kInt);
  std::string k1 = canon1.CanonicalKey({arena1.Le(x1, arena1.IntConst(9))});
  std::string k2 = canon2.CanonicalKey({arena2.Le(x2, arena2.IntConst(9))});
  EXPECT_EQ(k1, k2);
}

// --- QueryCache -------------------------------------------------------------

TEST(QueryCacheTest, InsertLookupRoundTrip) {
  QueryCache cache;
  SatResult verdict = SatResult::kUnknown;
  EXPECT_FALSE(cache.Lookup("k", &verdict));
  cache.Insert("k", SatResult::kUnsat);
  EXPECT_TRUE(cache.Lookup("k", &verdict));
  EXPECT_EQ(verdict, SatResult::kUnsat);
  QueryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(QueryCacheTest, UnknownIsNeverCached) {
  QueryCache cache;
  cache.Insert("k", SatResult::kUnknown);
  SatResult verdict = SatResult::kSat;
  EXPECT_FALSE(cache.Lookup("k", &verdict));
}

TEST(QueryCacheTest, ClearDropsEverything) {
  QueryCache cache;
  cache.Insert("k", SatResult::kSat);
  cache.Clear();
  SatResult verdict = SatResult::kUnknown;
  EXPECT_FALSE(cache.Lookup("k", &verdict));
  EXPECT_EQ(cache.stats().entries, 0);
}

// --- CachingBackend ---------------------------------------------------------

TEST(CachingBackendTest, SecondIdenticalCheckHitsTheCache) {
  TermArena arena;
  QueryCache cache;
  Z3Backend z3(&arena);
  CachingBackend caching(&arena, &z3, &cache, /*shadow_validate=*/false,
                         /*shadow_fatal=*/false);
  Term x = arena.Var("x", Sort::kInt);
  caching.Assert(arena.Lt(x, arena.IntConst(10)));
  EXPECT_EQ(caching.CheckAssuming(arena.Lt(arena.IntConst(3), x)), SatResult::kSat);
  int64_t checks_after_first = z3.num_checks();
  EXPECT_EQ(caching.CheckAssuming(arena.Lt(arena.IntConst(3), x)), SatResult::kSat);
  EXPECT_EQ(z3.num_checks(), checks_after_first);  // served from the cache
  EXPECT_EQ(caching.cache_hits(), 1);
  EXPECT_EQ(caching.cache_misses(), 1);
}

TEST(CachingBackendTest, CacheSharedAcrossSessionsWithDifferentArenas) {
  QueryCache cache;
  auto run = [&cache](const char* pad_var) {
    TermArena arena;
    arena.Var(pad_var, Sort::kInt);  // desynchronize term ids
    Z3Backend z3(&arena);
    CachingBackend caching(&arena, &z3, &cache, false, false);
    Term q = arena.Var("qtype", Sort::kInt);
    caching.Assert(arena.Le(arena.IntConst(1), q));
    return caching.CheckAssuming(arena.Le(q, arena.IntConst(255)));
  };
  EXPECT_EQ(run("a"), SatResult::kSat);
  EXPECT_EQ(run("completely.different"), SatResult::kSat);
  EXPECT_EQ(cache.stats().hits, 1);  // second session reused the first's work
}

TEST(CachingBackendTest, GetModelAfterHitReplaysOnInner) {
  TermArena arena;
  QueryCache cache;
  Z3Backend z3(&arena);
  CachingBackend caching(&arena, &z3, &cache, false, false);
  Term x = arena.Var("x", Sort::kInt);
  Term q = arena.Eq(x, arena.IntConst(42));
  ASSERT_EQ(caching.CheckAssuming(q), SatResult::kSat);
  ASSERT_EQ(caching.CheckAssuming(q), SatResult::kSat);  // cache hit
  Model model = caching.GetModel();
  EXPECT_EQ(caching.model_replays(), 1);
  int64_t value = 0;
  ASSERT_TRUE(model.Get("x", &value));
  EXPECT_EQ(value, 42);
}

TEST(CachingBackendTest, PopInvalidatesFrameLocalEntries) {
  // The key covers the whole frame stack, so a query under a pushed frame
  // must not collide with the same assumption after the pop.
  TermArena arena;
  QueryCache cache;
  Z3Backend z3(&arena);
  CachingBackend caching(&arena, &z3, &cache, false, false);
  Term x = arena.Var("x", Sort::kInt);
  caching.Push();
  caching.Assert(arena.Lt(x, arena.IntConst(0)));
  EXPECT_EQ(caching.CheckAssuming(arena.Lt(arena.IntConst(5), x)), SatResult::kUnsat);
  caching.Pop();
  EXPECT_EQ(caching.CheckAssuming(arena.Lt(arena.IntConst(5), x)), SatResult::kSat);
}

// --- IntervalPreSolver ------------------------------------------------------

class PreSolverTest : public ::testing::Test {
 protected:
  PreSolverTest() : z3_(&arena_), presolver_(&arena_, &z3_, false, false) {}
  Term Int(int64_t v) { return arena_.IntConst(v); }
  Term Var(const char* name) { return arena_.Var(name, Sort::kInt); }

  TermArena arena_;
  Z3Backend z3_;
  IntervalPreSolver presolver_;
};

TEST_F(PreSolverTest, DecidesSimpleBounds) {
  Term x = Var("x");
  auto sat = presolver_.Decide({arena_.Le(Int(0), x), arena_.Lt(x, Int(10))});
  ASSERT_TRUE(sat.has_value());
  EXPECT_EQ(*sat, SatResult::kSat);
  auto unsat = presolver_.Decide({arena_.Lt(x, Int(0)), arena_.Lt(Int(5), x)});
  ASSERT_TRUE(unsat.has_value());
  EXPECT_EQ(*unsat, SatResult::kUnsat);
}

TEST_F(PreSolverTest, NegatedComparisonsNormalize) {
  Term x = Var("x");
  // ¬(x < 5) ∧ x < 5  is unsat.
  auto verdict =
      presolver_.Decide({arena_.Not(arena_.Lt(x, Int(5))), arena_.Lt(x, Int(5))});
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kUnsat);
}

TEST_F(PreSolverTest, ExclusionsExhaustAFiniteInterval) {
  Term x = Var("x");
  std::vector<Term> terms = {arena_.Le(Int(0), x), arena_.Le(x, Int(2)),
                             arena_.Ne(x, Int(0)), arena_.Ne(x, Int(1)),
                             arena_.Ne(x, Int(2))};
  auto verdict = presolver_.Decide(terms);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kUnsat);
  terms.pop_back();  // x == 2 remains possible
  verdict = presolver_.Decide(terms);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kSat);
}

TEST_F(PreSolverTest, VarVarComparisonsUseIntervals) {
  Term x = Var("x");
  Term y = Var("y");
  // x in [0,5], y in [10,20]  =>  x < y is provably true.
  std::vector<Term> base = {arena_.Le(Int(0), x), arena_.Le(x, Int(5)),
                            arena_.Le(Int(10), y), arena_.Le(y, Int(20))};
  std::vector<Term> sat_query = base;
  sat_query.push_back(arena_.Lt(x, y));
  auto verdict = presolver_.Decide(sat_query);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kSat);
  std::vector<Term> unsat_query = base;
  unsat_query.push_back(arena_.Lt(y, x));
  verdict = presolver_.Decide(unsat_query);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kUnsat);
}

TEST_F(PreSolverTest, ArithmeticAtomsEvaluate) {
  Term x = Var("x");
  // x in [0,5]  =>  x + 1 <= 10 is provably true.
  auto verdict = presolver_.Decide({arena_.Le(Int(0), x), arena_.Le(x, Int(5)),
                                    arena_.Le(arena_.Add(x, Int(1)), Int(10))});
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kSat);
}

TEST_F(PreSolverTest, BailsOnUndecidedOverlap) {
  Term x = Var("x");
  Term y = Var("y");
  // Overlapping intervals: x < y is neither provably true nor false.
  auto verdict = presolver_.Decide({arena_.Le(Int(0), x), arena_.Le(x, Int(10)),
                                    arena_.Le(Int(5), y), arena_.Le(y, Int(15)),
                                    arena_.Lt(x, y)});
  EXPECT_FALSE(verdict.has_value());
}

TEST_F(PreSolverTest, BailsOutsideTheFragment) {
  Term x = Var("x");
  Term y = Var("y");
  auto with_or = presolver_.Decide(
      {arena_.Or(arena_.Lt(x, Int(0)), arena_.Lt(Int(5), x))});
  EXPECT_FALSE(with_or.has_value());
  auto with_div = presolver_.Decide({arena_.Eq(arena_.Div(x, y), Int(2))});
  EXPECT_FALSE(with_div.has_value());
}

TEST_F(PreSolverTest, BoolLiteralsForceAndConflict) {
  Term b = arena_.Var("b", Sort::kBool);
  auto verdict = presolver_.Decide({b, arena_.Not(b)});
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kUnsat);
  verdict = presolver_.Decide({b});
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, SatResult::kSat);
}

TEST_F(PreSolverTest, DischargedSatStillYieldsAZ3Model) {
  Term x = Var("x");
  presolver_.Assert(arena_.Le(Int(3), x));
  presolver_.Assert(arena_.Le(x, Int(3)));
  ASSERT_EQ(presolver_.Check(), SatResult::kSat);
  EXPECT_EQ(presolver_.discharges(), 1);
  EXPECT_EQ(z3_.num_checks(), 0);  // Z3 untouched so far
  Model model = presolver_.GetModel();
  EXPECT_EQ(z3_.num_checks(), 1);  // the replay
  int64_t value = 0;
  ASSERT_TRUE(model.Get("x", &value));
  EXPECT_EQ(value, 3);
}

TEST_F(PreSolverTest, AgreesWithZ3OnRandomBoundQueries) {
  // Cross-validation sweep: every decided verdict must match Z3's.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  int decided = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<Term> terms;
    Term vars[2] = {Var("x"), Var("y")};
    int num_literals = 1 + static_cast<int>(next() % 4);
    for (int i = 0; i < num_literals; ++i) {
      Term v = vars[next() % 2];
      int64_t c = static_cast<int64_t>(next() % 21) - 10;
      switch (next() % 4) {
        case 0: terms.push_back(arena_.Lt(v, Int(c))); break;
        case 1: terms.push_back(arena_.Le(Int(c), v)); break;
        case 2: terms.push_back(arena_.Eq(v, Int(c))); break;
        default: terms.push_back(arena_.Ne(v, Int(c))); break;
      }
    }
    auto verdict = presolver_.Decide(terms);
    if (!verdict.has_value()) continue;
    ++decided;
    SatResult truth = z3_.CheckAssuming(arena_.AndN(terms));
    EXPECT_EQ(*verdict, truth) << "round " << round;
  }
  EXPECT_GT(decided, 100);  // the sweep actually exercised the decider
}

// --- SolverSession facade ---------------------------------------------------

TEST(SolverFacade, DedupesRepeatedAsserts) {
  TermArena arena;
  SolverSession solver(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term c = arena.Lt(x, arena.IntConst(5));
  solver.Assert(c);
  solver.Assert(c);  // same term id: skipped
  solver.Push();
  solver.Assert(c);  // still on the stack: skipped
  EXPECT_EQ(solver.stats().asserts_deduped, 2);
  solver.Pop();
  solver.Push();
  solver.Assert(c);  // outer frame still holds it: skipped
  EXPECT_EQ(solver.stats().asserts_deduped, 3);
  EXPECT_EQ(solver.Check(), SatResult::kSat);
}

TEST(SolverFacade, PopReenablesAssertsFromDeadFrames) {
  TermArena arena;
  SolverSession solver(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term c = arena.Lt(x, arena.IntConst(0));
  solver.Push();
  solver.Assert(c);
  solver.Pop();
  solver.Assert(c);  // frame died: must actually re-assert
  EXPECT_EQ(solver.stats().asserts_deduped, 0);
  EXPECT_EQ(solver.CheckAssuming(arena.Lt(arena.IntConst(5), x)), SatResult::kUnsat);
}

TEST(SolverFacade, LayeredStackCountsEveryLayer) {
  TermArena arena;
  QueryCache cache;
  SolverConfig config;
  config.layering = SolverLayering::kCachePresolve;
  config.cache = &cache;
  SolverSession solver(&arena, config);
  Term x = arena.Var("x", Sort::kInt);
  solver.Assert(arena.Le(arena.IntConst(0), x));
  // Pure bound query: discharged by the pre-solver, Z3 never runs.
  EXPECT_EQ(solver.CheckAssuming(arena.Lt(x, arena.IntConst(10))), SatResult::kSat);
  SolverStats stats = solver.stats();
  EXPECT_EQ(stats.queries, 1);
  EXPECT_EQ(stats.presolver_discharges, 1);
  EXPECT_EQ(stats.z3_checks, 0);
  // Division falls through the pre-solver to the cache, then Z3.
  Term y = arena.Var("y", Sort::kInt);
  Term div_query = arena.Eq(arena.Div(y, arena.IntConst(2)), arena.IntConst(3));
  EXPECT_EQ(solver.CheckAssuming(div_query), SatResult::kSat);
  EXPECT_EQ(solver.CheckAssuming(div_query), SatResult::kSat);  // cache hit
  stats = solver.stats();
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.z3_checks, 1);
}

TEST(SolverFacade, ShadowValidationAgreesOnLayeredVerdicts) {
  TermArena arena;
  QueryCache cache;
  SolverConfig config;
  config.layering = SolverLayering::kCachePresolve;
  config.cache = &cache;
  config.shadow_validate = true;
  config.shadow_fatal = true;  // a mismatch would crash the test
  SolverSession solver(&arena, config);
  Term x = arena.Var("x", Sort::kInt);
  solver.Assert(arena.Le(arena.IntConst(0), x));
  EXPECT_EQ(solver.CheckAssuming(arena.Lt(x, arena.IntConst(10))), SatResult::kSat);
  EXPECT_EQ(solver.CheckAssuming(arena.Lt(x, arena.IntConst(0))), SatResult::kUnsat);
  SolverStats stats = solver.stats();
  EXPECT_GT(stats.shadow_checks, 0);
  EXPECT_EQ(stats.shadow_mismatches, 0);
}

TEST(SolverFacade, EnvOverrideParses) {
  SolverConfig base;
  ASSERT_EQ(setenv("DNSV_SOLVER_FORCE", "shadow", 1), 0);
  SolverConfig forced = ApplySolverEnvOverride(base);
  EXPECT_EQ(forced.layering, SolverLayering::kCachePresolve);
  EXPECT_TRUE(forced.shadow_validate);
  EXPECT_TRUE(forced.shadow_fatal);
  ASSERT_EQ(setenv("DNSV_SOLVER_FORCE", "direct", 1), 0);
  forced = ApplySolverEnvOverride(forced);
  EXPECT_EQ(forced.layering, SolverLayering::kDirect);
  unsetenv("DNSV_SOLVER_FORCE");
  SolverConfig untouched = ApplySolverEnvOverride(base);
  EXPECT_EQ(untouched.layering, base.layering);
}

}  // namespace
}  // namespace dnsv

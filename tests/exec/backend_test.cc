// Tests of the execution-backend seam (docs/BACKEND.md): kind parsing, the
// AOT artifact inventory and its fingerprint provenance, and interp/compiled
// behavioral parity — responses, panics, and the call-depth contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/exec/backend.h"
#include "src/exec/codegen.h"
#include "src/interp/value.h"
#include "src/ir/printer.h"

namespace dnsv {
namespace {

TEST(BackendKindTest, NamesRoundTrip) {
  EXPECT_STREQ(BackendKindName(BackendKind::kInterp), "interp");
  EXPECT_STREQ(BackendKindName(BackendKind::kCompiled), "compiled");

  Result<BackendKind> interp = ParseBackendKind("interp");
  ASSERT_TRUE(interp.ok()) << interp.error();
  EXPECT_EQ(interp.value(), BackendKind::kInterp);

  Result<BackendKind> compiled = ParseBackendKind("compiled");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  EXPECT_EQ(compiled.value(), BackendKind::kCompiled);
}

TEST(BackendKindTest, RejectsUnknownKind) {
  Result<BackendKind> bad = ParseBackendKind("jit");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("jit"), std::string::npos) << bad.error();
  EXPECT_NE(bad.error().find("interp"), std::string::npos) << bad.error();
  EXPECT_FALSE(ParseBackendKind("").ok());
  EXPECT_FALSE(ParseBackendKind("Interp").ok());  // case-sensitive, like ports
}

TEST(CompiledBackendTest, EveryEngineVersionIsCompiledIn) {
  for (EngineVersion version : AllEngineVersions()) {
    EXPECT_TRUE(CompiledBackendAvailable(version)) << EngineVersionName(version);
    Result<std::unique_ptr<ExecutionBackend>> backend = MakeCompiledBackend(version);
    ASSERT_TRUE(backend.ok()) << backend.error();
    EXPECT_STREQ(backend.value()->name(), "compiled");
  }
}

// The provenance gate, stated directly: the fingerprint absir-codegen
// embedded at build time must equal the fingerprint of compiling the same
// embedded sources now and applying the verifier's prune pass. This is what
// makes "the code being served is the IR that was verified" a checked fact.
TEST(CompiledBackendTest, FingerprintMatchesRecompiledPrunedModule) {
  for (EngineVersion version : AllEngineVersions()) {
    Result<uint64_t> embedded = CompiledBackendFingerprint(version);
    ASSERT_TRUE(embedded.ok()) << embedded.error();

    std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(version);
    PruneForCodegen(&engine->mutable_module());
    engine->Freeze();
    EXPECT_EQ(embedded.value(), ModuleFingerprint(engine->module()))
        << EngineVersionName(version);
  }
}

// Same queries through AuthoritativeServer on both backends: identical
// responses, on every version, through both entry points.
TEST(CompiledBackendTest, MatchesInterpOnSampleQueries) {
  const ZoneConfig zone = KitchenSinkZone();
  const char* qnames[] = {"www.example.com", "ent.example.com", "missing.example.com",
                          "a.wild.example.com", "sub.example.com", "other.org", ""};
  for (EngineVersion version :
       {EngineVersion::kGolden, EngineVersion::kV4, EngineVersion::kV5}) {
    auto interp = AuthoritativeServer::Create(version, zone, BackendKind::kInterp);
    auto compiled = AuthoritativeServer::Create(version, zone, BackendKind::kCompiled);
    ASSERT_TRUE(interp.ok()) << interp.error();
    ASSERT_TRUE(compiled.ok()) << compiled.error();
    for (const char* qname : qnames) {
      for (RrType qtype : {RrType::kA, RrType::kNs, RrType::kTxt, RrType::kSoa}) {
        DnsName name = DnsName::Parse(qname).value();
        QueryResult a = interp.value()->Query(name, qtype);
        QueryResult b = compiled.value()->Query(name, qtype);
        ASSERT_FALSE(a.panicked) << qname << ": " << a.panic_message;
        ASSERT_FALSE(b.panicked) << qname << ": " << b.panic_message;
        EXPECT_EQ(a.response.ToString(), b.response.ToString())
            << EngineVersionName(version) << " " << qname;

        QueryResult sa = interp.value()->QuerySpec(name, qtype);
        QueryResult sb = compiled.value()->QuerySpec(name, qtype);
        ASSERT_FALSE(sa.panicked) << qname << ": " << sa.panic_message;
        ASSERT_FALSE(sb.panicked) << qname << ": " << sb.panic_message;
        EXPECT_EQ(sa.response.ToString(), sb.response.ToString())
            << EngineVersionName(version) << " " << qname;
      }
    }
  }
}

// The dev version's known bug (tests/engine/bugs_test.cc) panics with
// "index out of range" on the interpreter; the compiled backend must produce
// the exact same panic message — bugs are preserved bug-for-bug.
TEST(CompiledBackendTest, PanicMessageParityOnDevBug) {
  const ZoneConfig zone = KitchenSinkZone();
  auto interp = AuthoritativeServer::Create(EngineVersion::kDev, zone, BackendKind::kInterp);
  auto compiled =
      AuthoritativeServer::Create(EngineVersion::kDev, zone, BackendKind::kCompiled);
  ASSERT_TRUE(interp.ok()) << interp.error();
  ASSERT_TRUE(compiled.ok()) << compiled.error();

  DnsName name = DnsName::Parse("missing.example.com").value();
  QueryResult a = interp.value()->Query(name, RrType::kA);
  QueryResult b = compiled.value()->Query(name, RrType::kA);
  ASSERT_TRUE(a.panicked);
  ASSERT_TRUE(b.panicked);
  EXPECT_EQ(a.panic_message, "index out of range");
  EXPECT_EQ(b.panic_message, a.panic_message);
}

// Running an entry with the wrong arity must panic (the backend's "no entry"
// guard), not crash: the generated wrappers check before unpacking args.
TEST(CompiledBackendTest, UnknownEntryArityPanics) {
  Result<std::unique_ptr<ExecutionBackend>> backend =
      MakeCompiledBackend(EngineVersion::kGolden);
  ASSERT_TRUE(backend.ok()) << backend.error();

  std::shared_ptr<const CompiledEngine> engine =
      CompiledEngine::GetCached(EngineVersion::kGolden);
  ConcreteMemory memory;
  ExecOutcome outcome =
      backend.value()->Run(engine->resolve_fn(), /*args=*/{}, &memory);
  EXPECT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_NE(outcome.panic_message.find("no entry"), std::string::npos)
      << outcome.panic_message;
}

}  // namespace
}  // namespace dnsv

// Unit proof that the two interprocedural codegen optimizations fire.
//
// On the engine sources both are currently dormant — every engine kNewObject
// escapes (constructor helpers return them, the tree stores them) and no
// forwardable load spans a pure call — so the differential fuzzer alone
// would let the machinery rot unexercised. These hand-written modules hit
// both paths and pin the emitted counters; end-to-end correctness of the
// generated code stays the fuzzer's job (docs/BACKEND.md).
#include "src/exec/codegen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/validate.h"

namespace dnsv {
namespace {

class CodegenTest : public ::testing::Test {
 protected:
  CodegenTest() : module_(&types_) {
    types_.DefineStruct("Pair", {{"a", types_.IntType()}, {"b", types_.IntType()}});
    pair_ty_ = types_.StructType("Pair");
  }

  // leaf() int { return 7 } — summarized pure and panic-free, so calls to it
  // are transparent to pending loads.
  void BuildLeaf() {
    Function* fn = module_.AddFunction("leaf", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Int(7));
  }

  // promoteMe() int — a kNewObject whose pointer is only ever the direct
  // address of loads/stores and never leaves the frame: both promotion gates
  // (escape analysis + direct-addressing scan) pass.
  void BuildPromotable() {
    Function* fn = module_.AddFunction("promoteMe", {}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    Operand obj = b.NewObject(pair_ty_);
    Operand value = b.Load(obj);
    b.Store(obj, value);
    b.Ret(b.FieldGet(b.Load(obj), 0));
  }

  // carryMe(n int) int { slot := n + 1; v := slot; return v + leaf() } — the
  // load of `slot` is pending when the emitter reaches the pure call and
  // must be carried across it instead of spilled. (The stored value is a
  // computed one so parameter copy elision does not absorb the load first.)
  void BuildCarrier() {
    Function* fn =
        module_.AddFunction("carryMe", {{"n", types_.IntType()}}, types_.IntType());
    IrBuilder b(&module_, fn);
    b.SetInsertPoint(b.CreateBlock("entry"));
    Operand slot = b.Alloca(types_.IntType());
    b.Store(slot, b.BinaryOp(BinOp::kAdd, b.Param(0), b.Int(1), types_.IntType()));
    Operand v = b.Load(slot);
    Operand c = b.Call("leaf", {}, types_.IntType());
    b.Ret(b.BinaryOp(BinOp::kAdd, v, c, types_.IntType()));
  }

  std::string Emit() {
    for (const auto& fn : module_.functions()) {
      EXPECT_TRUE(ValidateFunction(module_, *fn).ok()) << fn->name();
    }
    std::ostringstream out;
    EmitGenModule(module_, EngineVersion::kGolden, "v9.9", ModuleFingerprint(module_),
                  out);
    return out.str();
  }

  TypeTable types_;
  Module module_;
  Type pair_ty_;
};

TEST_F(CodegenTest, StackPromotesNonEscapingNewObject) {
  BuildPromotable();
  std::string text = Emit();
  EXPECT_NE(text.find("1 heap allocation(s) stack-promoted"), std::string::npos)
      << text.substr(0, 2000);
  // The promoted object lives as a C++ local, not behind ConcreteMemory.
  EXPECT_EQ(text.find("mem.Alloc"), std::string::npos) << text.substr(0, 2000);
}

TEST_F(CodegenTest, CarriesPendingLoadAcrossSummarizedPureCall) {
  BuildLeaf();
  BuildCarrier();
  std::string text = Emit();
  EXPECT_NE(text.find("1 load(s) carried across summarized pure calls"),
            std::string::npos)
      << text.substr(0, 2000);
}

TEST_F(CodegenTest, ImpureCalleeBlocksCrossCallForwarding) {
  // Same shape as carryMe, but the callee writes caller memory so its
  // summary is impure: the pending load must be spilled before the call,
  // not carried.
  Function* clobber = module_.AddFunction(
      "clobber", {{"p", types_.PtrTo(types_.IntType())}}, types_.IntType());
  {
    IrBuilder b(&module_, clobber);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Store(b.Param(0), b.Int(1));
    b.Ret(b.Int(0));
  }
  Function* fn =
      module_.AddFunction("spills", {{"n", types_.IntType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand slot = b.Alloca(types_.IntType());
  Operand aux = b.Alloca(types_.IntType());
  b.Store(slot, b.Param(0));
  b.Store(aux, b.Int(0));
  Operand v = b.Load(slot);
  Operand c = b.Call("clobber", {aux}, types_.IntType());
  b.Ret(b.BinaryOp(BinOp::kAdd, v, c, types_.IntType()));

  std::string text = Emit();
  EXPECT_NE(text.find("0 load(s) carried across summarized pure calls"),
            std::string::npos)
      << text.substr(0, 2000);
}

}  // namespace
}  // namespace dnsv

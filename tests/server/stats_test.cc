// Unit tests for the lock-free per-worker stats blocks (src/server/stats.h).
#include "src/server/stats.h"

#include <string>

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(ServerStatsTest, LatencyBucketsArePowerOfTwoRanges) {
  ServerStats stats;
  stats.RecordLatencyUs(0);    // bucket 0: [0, 1)
  stats.RecordLatencyUs(1);    // bucket 1: [1, 2)
  stats.RecordLatencyUs(2);    // bucket 2: [2, 4)
  stats.RecordLatencyUs(3);    // bucket 2
  stats.RecordLatencyUs(4);    // bucket 3: [4, 8)
  stats.RecordLatencyUs(1023);  // bucket 10: [512, 1024)
  stats.RecordLatencyUs(1024);  // bucket 11: [1024, 2048)
  stats.RecordLatencyUs(~uint64_t{0});  // clamps into the open-ended top bucket
  EXPECT_EQ(stats.latency[0].load(), 1u);
  EXPECT_EQ(stats.latency[1].load(), 1u);
  EXPECT_EQ(stats.latency[2].load(), 2u);
  EXPECT_EQ(stats.latency[3].load(), 1u);
  EXPECT_EQ(stats.latency[10].load(), 1u);
  EXPECT_EQ(stats.latency[11].load(), 1u);
  EXPECT_EQ(stats.latency[kLatencyBuckets - 1].load(), 1u);
}

TEST(ServerStatsTest, PercentilesComeFromBucketUpperBounds) {
  StatsSnapshot snapshot;
  EXPECT_EQ(snapshot.LatencyPercentileUs(0.99), 0u);  // empty: no data

  // 90 fast services in [4, 8) µs, 10 slow ones in [1024, 2048) µs.
  snapshot.latency[3] = 90;
  snapshot.latency[11] = 10;
  EXPECT_EQ(snapshot.LatencyPercentileUs(0.50), 8u);
  EXPECT_EQ(snapshot.LatencyPercentileUs(0.90), 8u);
  EXPECT_EQ(snapshot.LatencyPercentileUs(0.99), 2048u);
  EXPECT_EQ(snapshot.LatencyPercentileUs(1.0), 2048u);
}

TEST(ServerStatsTest, AggregateFoldsWorkerBlocks) {
  ServerStats a;
  ServerStats b;
  a.udp_queries = 10;
  a.parse_failures = 2;
  a.CountRcode(0);
  a.CountRcode(3);
  a.cache_hits = 4;
  a.cache_misses = 6;
  b.udp_queries = 5;
  b.tcp_queries = 7;
  b.truncated_responses = 1;
  b.cache_hits = 1;
  b.cache_inserts = 5;
  b.cache_stale = 2;
  b.cache_evictions = 3;
  b.CountRcode(0);

  StatsSnapshot snapshot;
  snapshot.Add(a);
  snapshot.Add(b);
  EXPECT_EQ(snapshot.udp_queries, 15u);
  EXPECT_EQ(snapshot.tcp_queries, 7u);
  EXPECT_EQ(snapshot.queries(), 22u);
  EXPECT_EQ(snapshot.parse_failures, 2u);
  EXPECT_EQ(snapshot.truncated_responses, 1u);
  EXPECT_EQ(snapshot.cache_hits, 5u);
  EXPECT_EQ(snapshot.cache_misses, 6u);
  EXPECT_EQ(snapshot.cache_inserts, 5u);
  EXPECT_EQ(snapshot.cache_stale, 2u);
  EXPECT_EQ(snapshot.cache_evictions, 3u);
  EXPECT_EQ(snapshot.rcodes[0], 2u);
  EXPECT_EQ(snapshot.rcodes[3], 1u);
}

TEST(ServerStatsTest, JsonCarriesEveryCounterAndOnlyNonZeroRcodes) {
  StatsSnapshot snapshot;
  snapshot.generation = 3;
  snapshot.udp_queries = 41;
  snapshot.tcp_queries = 1;
  snapshot.truncated_responses = 2;
  snapshot.rcodes[0] = 40;
  snapshot.rcodes[2] = 2;
  snapshot.latency[3] = 42;
  snapshot.cache_hits = 30;
  snapshot.cache_misses = 11;
  snapshot.cache_stale = 4;
  snapshot.cache_inserts = 9;
  snapshot.cache_evictions = 1;
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"generation\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"udp_queries\": 41"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tcp_queries\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"truncated_responses\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hits\": 30"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_misses\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_stale\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_inserts\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_evictions\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rcodes\": {\"0\": 40, \"2\": 2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\": 8"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"3\":"), std::string::npos) << "zero rcodes must be omitted: " << json;
}

}  // namespace
}  // namespace dnsv

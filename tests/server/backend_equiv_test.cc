// Loopback proof that ServerConfig::backend is behaviorally invisible
// (docs/BACKEND.md): the same query stream served by an interp-backed and a
// compiled-backed DnsServer must produce byte-identical wire responses —
// normal answers, the SERVFAIL a panicking engine version degrades to, and
// the TC=1 truncation whose TCP retry serves the full answer. Every test
// skips cleanly in sandboxes where loopback sockets cannot be bound.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

#define START_OR_SKIP(server, config, zone)                                  \
  std::unique_ptr<DnsServer> server;                                         \
  {                                                                          \
    Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, zone); \
    if (!started.ok()) {                                                     \
      GTEST_SKIP() << "cannot bind loopback sockets: " << started.error();   \
    }                                                                        \
    server = std::move(started).value();                                     \
  }

sockaddr_in Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::vector<uint8_t> UdpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return {};
  }
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(port);
  ::sendto(fd, request.data(), request.size(), 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
  uint8_t buffer[65536];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  if (n <= 0) {
    return {};
  }
  return std::vector<uint8_t>(buffer, buffer + n);
}

std::vector<uint8_t> TcpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::vector<uint8_t> framed;
  if (!AppendTcpFrame(&framed, request).ok()) {
    ::close(fd);
    return {};
  }
  ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
  TcpFrameDecoder decoder;
  std::vector<uint8_t> message;
  uint8_t buffer[65536];
  while (true) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
    if (decoder.Next(&message)) {
      ::close(fd);
      return message;
    }
  }
}

std::vector<uint8_t> QueryPacket(const std::string& qname, RrType qtype, uint16_t id) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  return EncodeWireQuery(query);
}

// Two servers, identical except for the backend; replies must match byte for
// byte on every probe because the request (including its ID) is identical.
TEST(BackendEquivTest, UdpStreamIsByteIdenticalAcrossBackends) {
  ZoneConfig zone = KitchenSinkZone();
  ServerConfig interp_config;
  interp_config.backend = BackendKind::kInterp;
  ServerConfig compiled_config;
  compiled_config.backend = BackendKind::kCompiled;
  START_OR_SKIP(interp_server, interp_config, zone);
  START_OR_SKIP(compiled_server, compiled_config, zone);
  EXPECT_EQ(compiled_server->config().backend, BackendKind::kCompiled);

  const char* qnames[] = {"www.example.com",       "ent.example.com",
                          "leaf.ent.example.com",  "missing.example.com",
                          "a.wild.example.com",    "sub.example.com",
                          "deep.sub.example.com",  "other.org"};
  uint16_t id = 0x6000;
  for (const char* qname : qnames) {
    for (RrType qtype : {RrType::kA, RrType::kNs, RrType::kTxt, RrType::kCname}) {
      std::vector<uint8_t> request = QueryPacket(qname, qtype, id++);
      std::vector<uint8_t> interp_reply = UdpExchange(interp_server->udp_port(), request);
      std::vector<uint8_t> compiled_reply =
          UdpExchange(compiled_server->udp_port(), request);
      ASSERT_FALSE(interp_reply.empty()) << qname;
      EXPECT_EQ(interp_reply, compiled_reply) << qname;
    }
  }
}

// The dev version panics on this query (tests/engine/bugs_test.cc); the
// serving shell degrades a panic to SERVFAIL. Both backends must panic the
// same way and therefore serve the same SERVFAIL bytes.
TEST(BackendEquivTest, ServfailOnPanicIsByteIdenticalAcrossBackends) {
  ZoneConfig zone = KitchenSinkZone();
  ServerConfig interp_config;
  interp_config.version = EngineVersion::kDev;
  interp_config.backend = BackendKind::kInterp;
  ServerConfig compiled_config = interp_config;
  compiled_config.backend = BackendKind::kCompiled;
  START_OR_SKIP(interp_server, interp_config, zone);
  START_OR_SKIP(compiled_server, compiled_config, zone);

  std::vector<uint8_t> request = QueryPacket("missing.example.com", RrType::kA, 0x6100);
  std::vector<uint8_t> interp_reply = UdpExchange(interp_server->udp_port(), request);
  std::vector<uint8_t> compiled_reply = UdpExchange(compiled_server->udp_port(), request);
  ASSERT_GE(interp_reply.size(), 4u);
  EXPECT_EQ(interp_reply[3] & 0x0f, static_cast<uint8_t>(Rcode::kServFail));
  EXPECT_EQ(interp_reply, compiled_reply);
  EXPECT_EQ(interp_server->Stats().engine_panics, 1u);
  EXPECT_EQ(compiled_server->Stats().engine_panics, 1u);
}

// A 40-record RRset overflows 512 bytes: the UDP answer arrives TC=1 and the
// TCP retry serves it in full — identically on both backends at both stages.
TEST(BackendEquivTest, TruncationAndTcpRetryAreByteIdenticalAcrossBackends) {
  ZoneConfig zone = WideRrsetZone(40);
  ServerConfig interp_config;
  interp_config.backend = BackendKind::kInterp;
  ServerConfig compiled_config;
  compiled_config.backend = BackendKind::kCompiled;
  START_OR_SKIP(interp_server, interp_config, zone);
  START_OR_SKIP(compiled_server, compiled_config, zone);

  std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x6200);
  std::vector<uint8_t> interp_udp = UdpExchange(interp_server->udp_port(), request);
  std::vector<uint8_t> compiled_udp = UdpExchange(compiled_server->udp_port(), request);
  ASSERT_GE(interp_udp.size(), 4u);
  EXPECT_NE(interp_udp[2] & 0x02, 0) << "expected TC=1";  // TC bit, header byte 2
  EXPECT_EQ(interp_udp, compiled_udp);

  std::vector<uint8_t> interp_tcp = TcpExchange(interp_server->tcp_port(), request);
  std::vector<uint8_t> compiled_tcp = TcpExchange(compiled_server->tcp_port(), request);
  ASSERT_GT(interp_tcp.size(), interp_udp.size());
  EXPECT_EQ(interp_tcp[2] & 0x02, 0) << "TCP answer must not truncate";
  EXPECT_EQ(interp_tcp, compiled_tcp);
}

}  // namespace
}  // namespace dnsv

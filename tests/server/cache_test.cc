// The response packet cache (src/server/cache.h): unit tests for the key
// scheme / TTL walker / splice-back, ServePacket-level cacheability rules,
// loopback integration (shared cache across 4 workers, reload-under-load
// invalidation, the 0x20 mixed-case regression of ISSUE 9), and the
// differential harness proving transparency: every cached answer is
// byte-identical to what the engine would serve cold, across every engine
// version, across a mid-stream zone reload, and (ISSUE 10) across the
// EDNS-negotiated payload limits 512/1232/4096.
#include "src/server/cache.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/fuzz/packet_gen.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

std::unique_ptr<AuthoritativeServer> MakeShard(const ZoneConfig& zone,
                                               EngineVersion version = EngineVersion::kGolden) {
  Result<std::unique_ptr<AuthoritativeServer>> shard = AuthoritativeServer::Create(version, zone);
  EXPECT_TRUE(shard.ok()) << shard.error();
  return std::move(shard).value();
}

WireQuery MakeQuery(const std::string& qname, RrType qtype, uint16_t id, bool rd = false) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  query.recursion_desired = rd;
  return query;
}

// Flips the case of every other alphabetic byte — a 0x20 case-randomizing
// client. DnsName::Parse lowercases, so the flip is applied to the parsed
// labels directly.
WireQuery FlipCase(WireQuery query) {
  size_t i = 0;
  for (std::string& label : query.qname.labels) {
    for (char& c : label) {
      bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
      if (alpha && i++ % 2 == 0) {
        c = static_cast<char>(c ^ 0x20);
      }
    }
  }
  return query;
}

// The engine-side reference bytes for `query`: what a transparent cache hit
// must reproduce exactly (the question echoes the client's casing; record
// owner names come from the zone, already case-normalized by the interner).
std::vector<uint8_t> ReferenceBytes(AuthoritativeServer* shard, const WireQuery& query,
                                    size_t max_payload) {
  QueryResult result = shard->Query(query.qname, query.qtype);
  EXPECT_FALSE(result.panicked);
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, result.response, max_payload);
  EXPECT_TRUE(encoded.ok()) << encoded.error();
  return std::move(encoded).value();
}

TEST(CacheKeyTest, FoldsCaseButKeepsClientCasingForSplice) {
  CacheKey lower, mixed;
  ASSERT_TRUE(BuildCacheKey(MakeQuery("www.example.com", RrType::kA, 1), kMaxUdpPayload, &lower));
  WireQuery mixed_query = FlipCase(MakeQuery("www.example.com", RrType::kA, 2));
  ASSERT_TRUE(BuildCacheKey(mixed_query, kMaxUdpPayload, &mixed));
  EXPECT_EQ(lower.key, mixed.key) << "0x20 variants must share one cache entry";
  EXPECT_NE(lower.qname_wire, mixed.qname_wire) << "splice material keeps the client's bytes";
  // The wire form is length-prefixed labels plus the root byte.
  std::vector<uint8_t> expected = {3, 'W', 'w', 'W', 7, 'e', 'X', 'a', 'M', 'p', 'L',
                                   'e', 3,   'C', 'o', 'M', 0};
  EXPECT_EQ(mixed.qname_wire, expected);
}

TEST(CacheKeyTest, SeparatesTypeClassRdBitAndPayloadLimit) {
  WireQuery base = MakeQuery("www.example.com", RrType::kA, 1);
  CacheKey a, b;
  ASSERT_TRUE(BuildCacheKey(base, kMaxUdpPayload, &a));

  WireQuery other_type = base;
  other_type.qtype = RrType::kAaaa;
  ASSERT_TRUE(BuildCacheKey(other_type, kMaxUdpPayload, &b));
  EXPECT_NE(a.key, b.key);

  WireQuery other_class = base;
  other_class.qclass = 3;  // CH
  ASSERT_TRUE(BuildCacheKey(other_class, kMaxUdpPayload, &b));
  EXPECT_NE(a.key, b.key);

  WireQuery rd = base;
  rd.recursion_desired = true;
  ASSERT_TRUE(BuildCacheKey(rd, kMaxUdpPayload, &b));
  EXPECT_NE(a.key, b.key) << "RD is reflected into response flags, so it splits the key";

  // A TCP-sized answer must never satisfy a UDP-sized lookup: the payload
  // limit decides truncation, so it is part of the key.
  ASSERT_TRUE(BuildCacheKey(base, kMaxTcpPayload, &b));
  EXPECT_NE(a.key, b.key);

  // Different IDs do NOT split the key — the ID is spliced on every hit.
  WireQuery other_id = base;
  other_id.id = 999;
  ASSERT_TRUE(BuildCacheKey(other_id, kMaxUdpPayload, &b));
  EXPECT_EQ(a.key, b.key);
}

TEST(CacheKeyTest, RejectsNamesOverTheWireLimit) {
  std::string label(63, 'a');
  WireQuery query;
  query.id = 1;
  query.qname.labels = {label, label, label, label, label};  // 5*64+1 > 255
  CacheKey key;
  EXPECT_FALSE(BuildCacheKey(query, kMaxUdpPayload, &key));
}

TEST(MinimumResponseTtlTest, WalksRealEncodedResponsesAndRejectsTheRest) {
  auto shard = MakeShard(KitchenSinkZone());
  WireQuery query = MakeQuery("www.example.com", RrType::kA, 7);
  std::vector<uint8_t> wire = ReferenceBytes(shard.get(), query, kMaxUdpPayload);
  // The encoder stamps every record with its fixed 300 s TTL (src/dns/wire.cc).
  EXPECT_EQ(MinimumResponseTtl(wire), 300u);

  // Header-only packets (the FORMERR/NOTIMP/SERVFAIL fallbacks) carry no
  // records: uncacheable.
  EXPECT_EQ(MinimumResponseTtl(BuildErrorResponse(nullptr, 0, Rcode::kServFail)), 0u);

  // A zero-TTL record pins the whole response at 0 (never cached).
  std::vector<uint8_t> zero_ttl = wire;
  size_t offset = 12 + /*question*/ (1 + 3 + 1 + 7 + 1 + 3 + 1) + 4;  // first answer record
  offset += (1 + 3 + 1 + 7 + 1 + 3 + 1) + 4;                          // its owner name + type/class
  for (int i = 0; i < 4; ++i) {
    zero_ttl[offset + i] = 0;
  }
  EXPECT_EQ(MinimumResponseTtl(zero_ttl), 0u);

  // Truncated garbage is "uncacheable", never out-of-bounds.
  std::vector<uint8_t> chopped(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_EQ(MinimumResponseTtl(chopped), 0u);
  EXPECT_EQ(MinimumResponseTtl(std::vector<uint8_t>{}), 0u);
}

TEST(PacketCacheTest, HitSplicesClientIdAndCasing) {
  auto shard = MakeShard(KitchenSinkZone());
  PacketCache cache(64);
  ServerStats stats;

  WireQuery original = MakeQuery("www.example.com", RrType::kA, 0x1111);
  CacheKey key;
  ASSERT_TRUE(BuildCacheKey(original, kMaxUdpPayload, &key));
  std::vector<uint8_t> wire = ReferenceBytes(shard.get(), original, kMaxUdpPayload);
  cache.Insert(key, /*generation=*/1, /*ttl_seconds=*/300, wire, &stats);
  EXPECT_EQ(stats.cache_inserts.load(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A 0x20 client with a different ID hits the same entry and must receive
  // exactly the bytes the engine would have encoded for *its* query.
  WireQuery mixed = FlipCase(MakeQuery("www.example.com", RrType::kA, 0x2222));
  CacheKey mixed_key;
  ASSERT_TRUE(BuildCacheKey(mixed, kMaxUdpPayload, &mixed_key));
  std::vector<uint8_t> response;
  ASSERT_TRUE(cache.Lookup(mixed_key, 1, mixed.id, &response, &stats));
  EXPECT_EQ(response, ReferenceBytes(shard.get(), mixed, kMaxUdpPayload));
  EXPECT_EQ(stats.cache_hits.load(), 1u);
}

TEST(PacketCacheTest, ExpiryAndGenerationBothInvalidate) {
  PacketCache::Clock::time_point now{};
  PacketCache cache(64, [&now] { return now; });
  ServerStats stats;

  CacheKey key;
  ASSERT_TRUE(BuildCacheKey(MakeQuery("www.example.com", RrType::kA, 1), kMaxUdpPayload, &key));
  std::vector<uint8_t> wire(64, 0xAA);  // >= header + question (splice precondition)
  std::vector<uint8_t> out;

  // TTL expiry under the injected clock.
  cache.Insert(key, /*generation=*/1, /*ttl_seconds=*/5, wire, &stats);
  now += std::chrono::seconds(4);
  EXPECT_TRUE(cache.Lookup(key, 1, 1, &out, &stats));
  now += std::chrono::seconds(2);  // past the 5 s expiry
  EXPECT_FALSE(cache.Lookup(key, 1, 1, &out, &stats));
  EXPECT_EQ(stats.cache_stale.load(), 1u);
  EXPECT_EQ(cache.size(), 0u) << "the stale entry is erased, not skipped";

  // Generation mismatch: a reload bumped the snapshot counter, so an
  // un-expired entry is dead.
  cache.Insert(key, /*generation=*/1, /*ttl_seconds=*/300, wire, &stats);
  EXPECT_FALSE(cache.Lookup(key, /*generation=*/2, 1, &out, &stats));
  EXPECT_EQ(stats.cache_stale.load(), 2u);
  EXPECT_FALSE(cache.Lookup(key, /*generation=*/1, 1, &out, &stats))
      << "erased on the mismatch — even the old generation cannot resurrect it";
}

TEST(PacketCacheTest, CapacityIsBoundedByEviction) {
  PacketCache cache(8);
  ServerStats stats;
  std::vector<uint8_t> wire(64, 0xAA);
  for (int i = 0; i < 100; ++i) {
    CacheKey key;
    ASSERT_TRUE(BuildCacheKey(MakeQuery("host" + std::to_string(i) + ".example.com", RrType::kA, 1),
                              kMaxUdpPayload, &key));
    cache.Insert(key, 1, 300, wire, &stats);
  }
  EXPECT_LE(cache.size(), cache.max_entries());
  EXPECT_EQ(stats.cache_inserts.load(), 100u);
  EXPECT_GE(stats.cache_evictions.load(), 100u - cache.max_entries());
}

// ---- ServePacket-level cacheability -------------------------------------

TEST(CachedServeTest, SecondServeIsAHitAndByteIdentical) {
  auto shard = MakeShard(KitchenSinkZone());
  PacketCache cache(64);
  ServerStats stats;
  ServeContext ctx{&cache, 1};

  WireQuery cold = MakeQuery("chain.example.com", RrType::kA, 0x0101);
  std::vector<uint8_t> cold_packet = EncodeWireQuery(cold);
  ServeOutcome first =
      ServePacket(shard.get(), cold_packet.data(), cold_packet.size(), kMaxUdpPayload, &stats, ctx);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(stats.cache_misses.load(), 1u);
  EXPECT_EQ(stats.cache_inserts.load(), 1u);

  WireQuery warm = FlipCase(MakeQuery("chain.example.com", RrType::kA, 0x0202));
  std::vector<uint8_t> warm_packet = EncodeWireQuery(warm);
  ServeOutcome second =
      ServePacket(shard.get(), warm_packet.data(), warm_packet.size(), kMaxUdpPayload, &stats, ctx);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(stats.cache_hits.load(), 1u);
  EXPECT_EQ(second.wire, ReferenceBytes(shard.get(), warm, kMaxUdpPayload));
  // Rcode accounting must not skip cache hits (the flood test's invariant
  // that rcode totals equal query totals relies on it).
  EXPECT_EQ(stats.rcodes[0].load(), 2u);
}

TEST(CachedServeTest, ErrorAndTruncatedResponsesAreNeverCached) {
  PacketCache cache(64);
  ServerStats stats;
  ServeContext ctx{&cache, 1};

  // SERVFAIL fallback (unencodable qname) — served, never stored.
  {
    auto shard = MakeShard(KitchenSinkZone());
    std::string label(63, 'a');
    std::string huge = label + "." + label + "." + label + "." + label + "." + label;
    std::vector<uint8_t> packet = EncodeWireQuery(MakeQuery(huge, RrType::kA, 1));
    ServeOutcome outcome =
        ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats, ctx);
    EXPECT_TRUE(outcome.servfail_fallback);
    EXPECT_EQ(stats.cache_inserts.load(), 0u);
    EXPECT_EQ(stats.cache_misses.load(), 0u) << "over-limit qnames bypass the cache entirely";
  }

  // FORMERR (unparseable) and NOTIMP (non-QUERY opcode): the cache is not
  // even consulted — no key exists before a successful parse.
  {
    auto shard = MakeShard(KitchenSinkZone());
    std::vector<uint8_t> formerr = {0xAB, 0xCD, 0x01, 0x00, 0, 0, 0, 0, 0, 0, 0, 0};
    ServeOutcome outcome =
        ServePacket(shard.get(), formerr.data(), formerr.size(), kMaxUdpPayload, &stats, ctx);
    EXPECT_TRUE(outcome.parse_error);
    std::vector<uint8_t> notimp = {0xAB, 0xCD, 0x10, 0x00, 0, 0, 0, 0, 0, 0, 0, 0};
    outcome = ServePacket(shard.get(), notimp.data(), notimp.size(), kMaxUdpPayload, &stats, ctx);
    EXPECT_TRUE(outcome.not_implemented);
    EXPECT_EQ(stats.cache_inserts.load(), 0u);
    EXPECT_EQ(stats.cache_misses.load(), 0u);
    EXPECT_EQ(cache.size(), 0u);
  }

  // TC=1: the truncated UDP rendering is never cached (the client's TCP
  // retry is the contract), and the full TCP rendering is cached under its
  // own payload-limit key.
  {
    auto shard = MakeShard(WideRrsetZone());
    std::vector<uint8_t> packet = EncodeWireQuery(MakeQuery("www.example.com", RrType::kA, 2));
    ServeOutcome udp =
        ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats, ctx);
    EXPECT_TRUE(udp.truncated);
    EXPECT_EQ(stats.cache_inserts.load(), 0u);
    EXPECT_EQ(cache.size(), 0u);

    ServeOutcome tcp =
        ServePacket(shard.get(), packet.data(), packet.size(), kMaxTcpPayload, &stats, ctx);
    EXPECT_FALSE(tcp.truncated);
    EXPECT_EQ(stats.cache_inserts.load(), 1u);

    // The warm UDP retry must still truncate — the TCP entry cannot leak in.
    udp = ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats, ctx);
    EXPECT_TRUE(udp.truncated);
    EXPECT_FALSE(udp.cache_hit);
  }
}

TEST(CachedServeTest, GenerationFlipServesTheNewZoneImmediately) {
  // Same origin, different www answer (one A record vs. two + TXT).
  ZoneConfig old_zone = Figure11Zone();
  ZoneConfig new_zone = KitchenSinkZone();
  auto old_shard = MakeShard(old_zone);
  auto new_shard = MakeShard(new_zone);
  PacketCache cache(64);
  ServerStats stats;

  std::vector<uint8_t> packet = EncodeWireQuery(MakeQuery("www.example.com", RrType::kA, 9));
  ServeContext gen1{&cache, 1};
  ServeOutcome before =
      ServePacket(old_shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats, gen1);
  EXPECT_EQ(stats.cache_inserts.load(), 1u);

  // Reload: the worker's shard and generation moved together. The cached
  // gen-1 answer must be invisible to a gen-2 lookup.
  ServeContext gen2{&cache, 2};
  ServeOutcome after =
      ServePacket(new_shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats, gen2);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(stats.cache_stale.load(), 1u);
  EXPECT_EQ(after.wire, ReferenceBytes(new_shard.get(),
                                       MakeQuery("www.example.com", RrType::kA, 9), kMaxUdpPayload));
  EXPECT_NE(after.wire, before.wire) << "the zones answer www differently by construction";
}

// ---- Differential harness -----------------------------------------------
//
// The transparency proof the tentpole demands: for a fuzz-generated query
// stream, serving cold (no cache) and warm (cache, twice, so the second
// serve is a hit) must be byte-identical for every engine version — and stay
// so across a mid-stream zone reload. IDs are identical across the arms by
// construction, so byte equality needs no normalization; a separate
// case-flipped, re-ID'd probe exercises the splice path explicitly.
TEST(CacheDifferentialTest, ColdVsWarmByteIdenticalAcrossVersionsAndReload) {
  constexpr int kQueries = 120;  // per version, half before + half after reload
  uint64_t total_hits = 0;
  for (EngineVersion version : AllEngineVersions()) {
    SCOPED_TRACE(EngineVersionName(version));
    ZoneConfig zone = KitchenSinkZone();
    auto cold_shard = MakeShard(zone, version);
    auto warm_shard = MakeShard(zone, version);
    PacketCache cache(512);
    ServerStats stats;
    uint64_t generation = 1;
    PacketGenerator gen(/*seed=*/0x9e3779b97f4a7c15ull, zone);

    int divergences = 0;
    for (int i = 0; i < kQueries; ++i) {
      if (i == kQueries / 2) {
        // Mid-stream hot reload: new zone, new shards, bumped generation —
        // exactly what RefreshShard does to a worker. Entries from the old
        // generation must never surface again.
        zone = WideRrsetZone(8);
        cold_shard = MakeShard(zone, version);
        warm_shard = MakeShard(zone, version);
        generation = 2;
        gen = PacketGenerator(/*seed=*/0xdeadbeefcafef00dull, zone);
      }
      WireQuery query;
      GeneratedPacket packet = gen.NextQueryPacket(&query);
      if (i % 3 == 0 && !zone.records.empty()) {
        // Anchor a deterministic share of in-zone hits: purely random names
        // are mostly REFUSED/NXDOMAIN (record-free, so uncacheable), and the
        // hit-exercising floor below must not depend on generator luck.
        query.qname = zone.records[static_cast<size_t>(i) % zone.records.size()].name;
        query.qtype = RrType::kA;
        query.qclass = 1;
        query.edns.version = 0;
        packet.bytes = EncodeWireQuery(query);
      }

      ServeOutcome cold = ServePacket(cold_shard.get(), packet.bytes.data(), packet.bytes.size(),
                                      kMaxUdpPayload, nullptr);
      ServeContext ctx{&cache, generation};
      ServeOutcome warm1 = ServePacket(warm_shard.get(), packet.bytes.data(), packet.bytes.size(),
                                       kMaxUdpPayload, &stats, ctx);
      ServeOutcome warm2 = ServePacket(warm_shard.get(), packet.bytes.data(), packet.bytes.size(),
                                       kMaxUdpPayload, &stats, ctx);
      if (cold.wire != warm1.wire || cold.wire != warm2.wire) {
        ++divergences;
        ADD_FAILURE() << "divergence on query " << i << " (" << query.qname.ToString() << ")";
        continue;
      }

      // 0x20 probe: flip the casing and the ID; a hit must still reproduce
      // the cold engine bytes for the flipped query exactly.
      WireQuery flipped = FlipCase(query);
      flipped.id = static_cast<uint16_t>(query.id + 1);
      std::vector<uint8_t> flipped_packet = EncodeWireQuery(flipped);
      ServeOutcome cold_flip = ServePacket(cold_shard.get(), flipped_packet.data(),
                                           flipped_packet.size(), kMaxUdpPayload, nullptr);
      ServeOutcome warm_flip = ServePacket(warm_shard.get(), flipped_packet.data(),
                                           flipped_packet.size(), kMaxUdpPayload, &stats, ctx);
      if (cold_flip.wire != warm_flip.wire) {
        ++divergences;
        ADD_FAILURE() << "0x20 divergence on query " << i << " (" << flipped.qname.ToString()
                      << ")";
      }
    }
    EXPECT_EQ(divergences, 0);
    // Versions whose answers are cacheable must actually exercise hits. The
    // dev version panics on lookups (its seeded bug), so every answer is an
    // uncacheable SERVFAIL — transparency still holds, hits cannot.
    if (stats.cache_inserts.load() > 0) {
      EXPECT_GT(stats.cache_hits.load(), 0u) << "the warm arm must actually exercise hits";
    }
    total_hits += stats.cache_hits.load();
  }
  EXPECT_GT(total_hits, 0u);
}

// EDNS transparency: for OPT-bearing queries the cache must be byte-for-byte
// invisible at every negotiated payload limit. A wide RRset makes the limit
// decisive — the answer truncates at 512 and 1232 but fits at 4096 — so any
// key aliasing across limits (or between EDNS and plain clients at the same
// name) would replay the wrong TC bit or the wrong OPT and break equality.
TEST(CacheDifferentialTest, EdnsColdVsWarmByteIdenticalAtEveryPayload) {
  ZoneConfig zone = WideRrsetZone(48);
  DnsName www = DnsName::Parse("www.example.com").value();
  for (EngineVersion version : AllEngineVersions()) {
    SCOPED_TRACE(EngineVersionName(version));
    auto cold_shard = MakeShard(zone, version);
    auto warm_shard = MakeShard(zone, version);
    PacketCache cache(64);
    ServerStats stats;
    ServeContext ctx{&cache, 1};
    for (uint16_t payload : {uint16_t{512}, uint16_t{1232}, uint16_t{4096}}) {
      SCOPED_TRACE(payload);
      WireQuery query;
      query.id = payload;
      query.qname = www;
      query.qtype = RrType::kA;
      query.edns.present = true;
      query.edns.udp_payload = payload;
      query.edns.dnssec_ok = payload == 1232;  // one DO variant in the sweep
      std::vector<uint8_t> packet = EncodeWireQuery(query);
      ServeOutcome cold =
          ServePacket(cold_shard.get(), packet.data(), packet.size(), kMaxUdpPayload, nullptr);
      ServeOutcome warm1 = ServePacket(warm_shard.get(), packet.data(), packet.size(),
                                       kMaxUdpPayload, &stats, ctx);
      ServeOutcome warm2 = ServePacket(warm_shard.get(), packet.data(), packet.size(),
                                       kMaxUdpPayload, &stats, ctx);
      EXPECT_EQ(cold.wire, warm1.wire);
      EXPECT_EQ(cold.wire, warm2.wire);
      if (payload == 4096 && !cold.truncated && (cold.wire[3] & 0xF) == 0 &&
          !cold.servfail_fallback) {
        EXPECT_TRUE(warm2.cache_hit) << "untruncated NOERROR answers must be cache-served";
      }
      if (payload == 512) {
        EXPECT_EQ(cold.truncated, warm2.truncated);
      }
    }
    // A plain client asking the same name must never see the EDNS entries:
    // its response carries no OPT, so aliasing would be a visible wire bug.
    WireQuery plain;
    plain.id = 7;
    plain.qname = www;
    plain.qtype = RrType::kA;
    std::vector<uint8_t> packet = EncodeWireQuery(plain);
    ServeOutcome cold =
        ServePacket(cold_shard.get(), packet.data(), packet.size(), kMaxUdpPayload, nullptr);
    ServeOutcome warm = ServePacket(warm_shard.get(), packet.data(), packet.size(),
                                    kMaxUdpPayload, &stats, ctx);
    EXPECT_EQ(cold.wire, warm.wire);
    WireQuery echoed;
    ASSERT_TRUE(ParseWireResponse(warm.wire, &echoed).ok());
    EXPECT_FALSE(echoed.edns.present) << "a plain client must not be served an OPT";
  }
}

// ---- Loopback integration ------------------------------------------------

#define START_OR_SKIP(server, config, zone)                                       \
  std::unique_ptr<DnsServer> server;                                              \
  {                                                                               \
    Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, zone);  \
    if (!started.ok()) {                                                          \
      GTEST_SKIP() << "cannot bind loopback sockets: " << started.error();        \
    }                                                                             \
    server = std::move(started).value();                                          \
  }

std::vector<uint8_t> UdpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return {};
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ::sendto(fd, request.data(), request.size(), 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
  uint8_t buffer[65536];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  if (n <= 0) {
    return {};
  }
  return std::vector<uint8_t>(buffer, buffer + n);
}

// ISSUE 9 satellite: the 0x20 regression. A mixed-case client must get the
// engine's (case-insensitive) answer with its own casing echoed in the
// question — cold and from the cache alike.
TEST(DnsServerCacheTest, MixedCaseLoopbackEchoesClientCasing) {
  ServerConfig config;
  config.port = 0;
  config.udp_workers = 1;
  START_OR_SKIP(server, config, KitchenSinkZone());

  auto reference = MakeShard(KitchenSinkZone());
  WireQuery mixed = FlipCase(MakeQuery("www.example.com", RrType::kA, 0x5A5A));
  std::vector<uint8_t> request = EncodeWireQuery(mixed);

  // Twice: the first serve fills the cache, the second must hit it. Both
  // must equal the engine-side reference encoding for the mixed-case query.
  std::vector<uint8_t> expected = ReferenceBytes(reference.get(), mixed, kMaxUdpPayload);
  std::vector<uint8_t> first = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(first.empty()) << "no UDP reply";
  EXPECT_EQ(first, expected);
  std::vector<uint8_t> second = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(second.empty()) << "no UDP reply";
  EXPECT_EQ(second, expected);

  // The answer really is the case-insensitive lookup's answer (an A record,
  // NOERROR), not an NXDOMAIN for the funny-cased name.
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(second, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_EQ(view.value().rcode, Rcode::kNoError);
  EXPECT_EQ(echoed.qname, mixed.qname) << "question must carry the client's casing";
  EXPECT_GE(server->Stats().cache_hits, 1u);
}

// Four workers share one cache: whoever misses fills it, everyone else must
// serve the exact same bytes for the same question. The kernel spreads the
// per-query sockets across SO_REUSEPORT workers, so with 64 exchanges all
// workers participate with high probability.
TEST(DnsServerCacheTest, FourWorkersShareOneConsistentCache) {
  ServerConfig config;
  config.port = 0;
  config.udp_workers = 4;
  START_OR_SKIP(server, config, KitchenSinkZone());

  auto reference = MakeShard(KitchenSinkZone());
  const char* names[] = {"www.example.com", "chain.example.com", "mail.example.com",
                         "a.dyn.example.com"};
  for (int round = 0; round < 16; ++round) {
    for (const char* name : names) {
      uint16_t id = static_cast<uint16_t>(0x4000 + round * 8 + (name[0] & 7));
      WireQuery query = MakeQuery(name, RrType::kA, id);
      if (round % 2 == 1) {
        query = FlipCase(query);
      }
      std::vector<uint8_t> reply = UdpExchange(server->udp_port(), EncodeWireQuery(query));
      ASSERT_FALSE(reply.empty()) << "no UDP reply for " << name << " round " << round;
      EXPECT_EQ(reply, ReferenceBytes(reference.get(), query, kMaxUdpPayload))
          << name << " round " << round;
    }
  }
  StatsSnapshot stats = server->Stats();
  EXPECT_GT(stats.cache_hits, 0u);
  // Every served query either hit or missed the cache — the counters, fed
  // by four workers concurrently, must balance the query count exactly.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries());
}

// Reload under load: after Reload() returns, no response may ever again
// carry the old zone's answer — the generation stamp makes every pre-reload
// cache entry invisible, with no sweep.
TEST(DnsServerCacheTest, ReloadInvalidatesWarmCacheImmediately) {
  Result<ZoneConfig> old_zone = ParseZoneText(
      "$ORIGIN example.com.\n"
      "@    SOA  ns1 1\n"
      "@    NS   ns1.example.com.\n"
      "www  A    10.0.0.1\n");
  ASSERT_TRUE(old_zone.ok()) << old_zone.error();
  Result<ZoneConfig> new_zone = ParseZoneText(
      "$ORIGIN example.com.\n"
      "@    SOA  ns1 2\n"
      "@    NS   ns1.example.com.\n"
      "www  A    10.0.0.2\n");
  ASSERT_TRUE(new_zone.ok()) << new_zone.error();

  ServerConfig config;
  config.port = 0;
  config.udp_workers = 2;
  START_OR_SKIP(server, config, old_zone.value());

  WireQuery query = MakeQuery("www.example.com", RrType::kA, 0x7777);
  std::vector<uint8_t> request = EncodeWireQuery(query);
  auto old_reference = MakeShard(old_zone.value());
  auto new_reference = MakeShard(new_zone.value());
  std::vector<uint8_t> old_bytes = ReferenceBytes(old_reference.get(), query, kMaxUdpPayload);
  std::vector<uint8_t> new_bytes = ReferenceBytes(new_reference.get(), query, kMaxUdpPayload);
  ASSERT_NE(old_bytes, new_bytes);

  // Warm the cache on the old zone.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(UdpExchange(server->udp_port(), request), old_bytes) << "warmup " << i;
  }
  EXPECT_GT(server->Stats().cache_hits, 0u);

  ASSERT_TRUE(server->Reload(new_zone.value()).ok());
  EXPECT_EQ(server->generation(), 2u);

  // Every post-reload response must be the new zone's bytes: a worker
  // refreshes its shard (and with it the generation it presents to the
  // cache) before serving each packet, so the warm gen-1 entry can never
  // satisfy a gen-2 lookup.
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
    ASSERT_FALSE(reply.empty()) << "no UDP reply after reload";
    EXPECT_EQ(reply, new_bytes) << "stale pre-reload answer served on query " << i;
  }
  StatsSnapshot stats = server->Stats();
  EXPECT_GE(stats.cache_stale, 1u) << "the warm entry must have been seen and erased";
  EXPECT_GT(stats.cache_hits, 0u);
}

// A cache-off server (cache_entries = 0) serves identically and reports
// all-zero cache counters — the flag really disables the subsystem.
TEST(DnsServerCacheTest, CacheOffServesIdenticallyWithZeroCounters) {
  ServerConfig config;
  config.port = 0;
  config.udp_workers = 1;
  config.cache_entries = 0;
  START_OR_SKIP(server, config, KitchenSinkZone());

  auto reference = MakeShard(KitchenSinkZone());
  WireQuery query = MakeQuery("www.example.com", RrType::kA, 0x2468);
  std::vector<uint8_t> request = EncodeWireQuery(query);
  std::vector<uint8_t> expected = ReferenceBytes(reference.get(), query, kMaxUdpPayload);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(UdpExchange(server->udp_port(), request), expected);
  }
  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_inserts, 0u);
}

}  // namespace
}  // namespace dnsv

// Unit tests for the socket-free request pipeline (src/server/serve.h),
// including regression tests for the three historical example-server bugs
// (ISSUE 5): the crashing SERVFAIL fallback, the hardcoded FORMERR flag
// bytes, and the unchecked atoi port parsing.
#include "src/server/serve.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/fuzz/packet_gen.h"

namespace dnsv {
namespace {

std::unique_ptr<AuthoritativeServer> MakeShard() {
  Result<std::unique_ptr<AuthoritativeServer>> shard =
      AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone());
  EXPECT_TRUE(shard.ok()) << shard.error();
  return std::move(shard).value();
}

std::vector<uint8_t> QueryPacket(const std::string& qname, RrType qtype, uint16_t id = 0x1234,
                                 bool rd = false) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  query.recursion_desired = rd;
  return EncodeWireQuery(query);
}

std::vector<uint8_t> EdnsQueryPacket(const std::string& qname, RrType qtype, uint16_t payload,
                                     bool dnssec_ok = false, uint8_t version = 0) {
  WireQuery query;
  query.id = 0x1234;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  query.edns.present = true;
  query.edns.udp_payload = payload;
  query.edns.dnssec_ok = dnssec_ok;
  query.edns.version = version;
  return EncodeWireQuery(query);
}

TEST(ServePacketTest, AnswersOverTheSamePathAsTheOldServer) {
  auto shard = MakeShard();
  ServerStats stats;
  std::vector<uint8_t> packet = QueryPacket("chain.example.com", RrType::kA, 0x4242);
  ServeOutcome outcome =
      ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats);
  ASSERT_FALSE(outcome.parse_error);
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(outcome.wire, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_EQ(echoed.id, 0x4242);
  EXPECT_EQ(view.value().rcode, Rcode::kNoError);
  EXPECT_EQ(view.value().answer.size(), 4u);  // chain -> alias -> www + 2 A records
  EXPECT_EQ(stats.rcodes[0].load(), 1u);
}

// Regression (ISSUE 5 bug 1): a qname of five 63-byte labels is parseable
// off the wire but exceeds the 255-byte wire-name limit, so even the minimal
// SERVFAIL response fails to encode. The old server called `.value()` on
// that second failure and crashed on attacker-controlled input; the fallback
// must now be the infallible header-only SERVFAIL with the ID patched in.
TEST(ServePacketTest, ServfailFallbackIsInfallibleOnUnencodableQname) {
  auto shard = MakeShard();
  ServerStats stats;
  std::string label(63, 'a');
  std::string huge = label + "." + label + "." + label + "." + label + "." + label;
  std::vector<uint8_t> packet = QueryPacket(huge, RrType::kA, 0xBEEF, /*rd=*/true);
  ASSERT_TRUE(ParseWireQuery(packet).ok());  // the parser accepts it...
  WireQuery parsed = ParseWireQuery(packet).value();
  ASSERT_FALSE(EncodeWireResponse(parsed, ResponseView{}).ok());  // ...the encoder cannot

  ServeOutcome outcome =
      ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats);
  EXPECT_TRUE(outcome.servfail_fallback);
  ASSERT_EQ(outcome.wire.size(), 12u);  // header-only
  EXPECT_EQ(outcome.wire[0], 0xBE);
  EXPECT_EQ(outcome.wire[1], 0xEF);
  EXPECT_EQ(outcome.wire[2], 0x80 | 0x01);  // QR + echoed RD
  EXPECT_EQ(outcome.wire[3], 0x02);         // SERVFAIL
  for (size_t i = 4; i < 12; ++i) {
    EXPECT_EQ(outcome.wire[i], 0) << "section count byte " << i;
  }
  EXPECT_EQ(stats.encode_failures.load(), 1u);
  EXPECT_EQ(stats.servfail_fallbacks.load(), 1u);
}

// Regression (ISSUE 5 bug 2): the FORMERR path used to hardcode flag bytes
// 0x80 0x01, discarding the client's OPCODE and RD bit that RFC 1035 §4.1.1
// requires a responder to echo (and wrongly asserting RD for clients that
// never set it).
TEST(ServePacketTest, FormerrEchoesOpcodeAndRdBit) {
  auto shard = MakeShard();
  // OPCODE 0, RD set, QDCOUNT 0 -> ParseWireQuery rejects it as malformed.
  std::vector<uint8_t> packet = {0xAB, 0xCD, 0x01, 0x00, 0, 0, 0, 0, 0, 0, 0, 0};
  ServeOutcome outcome =
      ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, nullptr);
  EXPECT_TRUE(outcome.parse_error);
  ASSERT_EQ(outcome.wire.size(), 12u);
  EXPECT_EQ(outcome.wire[0], 0xAB);
  EXPECT_EQ(outcome.wire[1], 0xCD);
  EXPECT_EQ(outcome.wire[2], 0x80 | 0x01);  // QR + echoed RD
  EXPECT_EQ(outcome.wire[3], 0x01);         // FORMERR

  // A query without RD must NOT get RD reflected back.
  std::vector<uint8_t> no_rd = {0x00, 0x01, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0};
  outcome = ServePacket(shard.get(), no_rd.data(), no_rd.size(), kMaxUdpPayload, nullptr);
  EXPECT_TRUE(outcome.parse_error);
  EXPECT_EQ(outcome.wire[2], 0x80);
  EXPECT_EQ(outcome.wire[2] & 0x01, 0);
}

// ISSUE 9 bugfix: a well-formed packet whose OPCODE is not QUERY used to be
// lumped in with unparseable garbage and answered FORMERR. RFC 1035 §4.1.1
// says an unimplemented kind of request gets NOTIMP — the packet parsed
// fine, the operation is just unsupported.
TEST(ServePacketTest, NonQueryOpcodesGetNotimpNotFormerr) {
  auto shard = MakeShard();
  for (uint8_t opcode : {uint8_t{1}, uint8_t{2}, uint8_t{4}}) {  // IQUERY, STATUS, NOTIFY
    SCOPED_TRACE(static_cast<int>(opcode));
    std::vector<uint8_t> packet = {0xAB, 0xCD, static_cast<uint8_t>(opcode << 3 | 0x01),
                                   0x00, 0,    1,
                                   0,    0,    0,
                                   0,    0,    0};
    // Well-formed question section, so only the opcode is objectionable.
    const uint8_t question[] = {3, 'w', 'w', 'w', 4, 'c', 'o', 'r', 'p',
                               4, 't', 'e', 's', 't', 0, 0, 1, 0, 1};
    packet.insert(packet.end(), question, question + sizeof(question));
    ServerStats stats;
    ServeOutcome outcome =
        ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats);
    EXPECT_TRUE(outcome.not_implemented);
    EXPECT_FALSE(outcome.parse_error);
    ASSERT_EQ(outcome.wire.size(), 12u);
    EXPECT_EQ(outcome.wire[0], 0xAB);
    EXPECT_EQ(outcome.wire[1], 0xCD);
    EXPECT_EQ(outcome.wire[2], 0x80 | (opcode << 3) | 0x01);  // QR + opcode + RD echoed
    EXPECT_EQ(outcome.wire[3], 0x04);                         // NOTIMP
    EXPECT_EQ(stats.parse_failures.load(), 0u);  // not a parse failure
    EXPECT_EQ(stats.rcodes[4].load(), 1u);
  }

  // A *response* (QR=1) with a weird opcode is not a request at all — that
  // stays FORMERR, so reflected responses cannot farm NOTIMPs.
  std::vector<uint8_t> reflected = {0xAB, 0xCD, 0x90, 0x00, 0, 0, 0, 0, 0, 0, 0, 0};
  ServeOutcome outcome =
      ServePacket(shard.get(), reflected.data(), reflected.size(), kMaxUdpPayload, nullptr);
  EXPECT_TRUE(outcome.parse_error);
  EXPECT_FALSE(outcome.not_implemented);
  EXPECT_EQ(outcome.wire[3], 0x01);
}

TEST(BuildErrorResponseTest, TruncatedHeadersGetBestEffortEcho) {
  // Nothing to echo: ID stays 0, flags are just QR.
  std::vector<uint8_t> empty = BuildErrorResponse(nullptr, 0, Rcode::kFormErr);
  ASSERT_EQ(empty.size(), 12u);
  EXPECT_EQ(empty[0], 0);
  EXPECT_EQ(empty[1], 0);
  EXPECT_EQ(empty[2], 0x80);
  EXPECT_EQ(empty[3], 0x01);

  // Two bytes: the ID is echoed, the flags word is not guessed at.
  uint8_t two[] = {0x12, 0x34};
  std::vector<uint8_t> id_only = BuildErrorResponse(two, sizeof(two), Rcode::kFormErr);
  EXPECT_EQ(id_only[0], 0x12);
  EXPECT_EQ(id_only[1], 0x34);
  EXPECT_EQ(id_only[2], 0x80);
}

// Every query_reject_* packet in the fuzz corpus must produce a FORMERR
// whose header echoes the client's ID/OPCODE/RD per the rules above.
TEST(ServePacketTest, CorpusRejectPacketsGetConformantFormerr) {
  auto shard = MakeShard();
  int tested = 0;
  for (const auto& entry : std::filesystem::directory_iterator(DNSV_WIRE_CORPUS_DIR)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("query_reject_", 0) != 0) {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    Result<std::vector<uint8_t>> packet = HexToWirePacket(text.str());
    ASSERT_TRUE(packet.ok()) << name << ": " << packet.error();
    const std::vector<uint8_t>& bytes = packet.value();
    ServerStats stats;
    ServeOutcome outcome =
        ServePacket(shard.get(), bytes.data(), bytes.size(), kMaxUdpPayload, &stats);
    EXPECT_TRUE(outcome.parse_error) << name;
    // RFC 6891 §7: when the (tolerantly scanned) query carried an OPT, the
    // FORMERR echoes one — 11 extra bytes and ARCOUNT 1.
    EdnsInfo scanned;
    ScanQueryForOpt(bytes.data(), bytes.size(), &scanned);
    ASSERT_EQ(outcome.wire.size(), scanned.present ? 23u : 12u) << name;
    EXPECT_EQ(outcome.wire[11], scanned.present ? 1 : 0) << name;  // ARCOUNT
    if (scanned.present) {
      EXPECT_EQ(outcome.wire[12], 0x00) << name;  // root owner
      EXPECT_EQ(outcome.wire[13], 0x00) << name;
      EXPECT_EQ(outcome.wire[14], 41) << name;  // TYPE=OPT
    }
    EXPECT_EQ(outcome.wire[3], 0x01) << name;                   // FORMERR
    EXPECT_EQ(outcome.wire[2] & 0x80, 0x80) << name;            // QR set
    if (bytes.size() >= 2) {
      EXPECT_EQ(outcome.wire[0], bytes[0]) << name;
      EXPECT_EQ(outcome.wire[1], bytes[1]) << name;
    }
    if (bytes.size() >= 4) {
      EXPECT_EQ(outcome.wire[2] & 0x79, bytes[2] & 0x79) << name;  // OPCODE + RD echoed
    }
    EXPECT_EQ(stats.parse_failures.load(), 1u) << name;
    ++tested;
  }
  EXPECT_GE(tested, 3);  // the corpus ships at least 3 reject queries
}

// Every query_notimp_* packet (well-formed, OPCODE outside the QUERY
// subset: IQUERY, STATUS, NOTIFY) must produce a NOTIMP with the header
// echo rules of BuildErrorResponse.
TEST(ServePacketTest, CorpusNotimpPacketsGetNotimp) {
  auto shard = MakeShard();
  int tested = 0;
  for (const auto& entry : std::filesystem::directory_iterator(DNSV_WIRE_CORPUS_DIR)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("query_notimp_", 0) != 0) {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    Result<std::vector<uint8_t>> packet = HexToWirePacket(text.str());
    ASSERT_TRUE(packet.ok()) << name << ": " << packet.error();
    const std::vector<uint8_t>& bytes = packet.value();
    ServerStats stats;
    ServeOutcome outcome =
        ServePacket(shard.get(), bytes.data(), bytes.size(), kMaxUdpPayload, &stats);
    EXPECT_TRUE(outcome.not_implemented) << name;
    EXPECT_FALSE(outcome.parse_error) << name;
    ASSERT_EQ(outcome.wire.size(), 12u) << name;
    EXPECT_EQ(outcome.wire[3], 0x04) << name;                    // NOTIMP
    EXPECT_EQ(outcome.wire[2] & 0x80, 0x80) << name;             // QR set
    EXPECT_EQ(outcome.wire[0], bytes[0]) << name;
    EXPECT_EQ(outcome.wire[1], bytes[1]) << name;
    EXPECT_EQ(outcome.wire[2] & 0x79, bytes[2] & 0x79) << name;  // OPCODE + RD echoed
    EXPECT_NE(bytes[2] & 0x78, 0) << name;  // the corpus packet really is non-QUERY
    EXPECT_EQ(stats.parse_failures.load(), 0u) << name;
    EXPECT_EQ(stats.rcodes[4].load(), 1u) << name;
    ++tested;
  }
  EXPECT_GE(tested, 3);  // IQUERY, STATUS, NOTIFY
}

// Regression (ISSUE 5 bug 3): `dns_server zone.txt 99999` used to truncate
// the port mod 2^16 via atoi, and "abc" became port 0 (kernel-assigned).
TEST(ParsePortTest, RejectsWhatAtoiSilentlyMangled) {
  EXPECT_FALSE(ParsePort("99999").ok());   // atoi: 34463
  EXPECT_FALSE(ParsePort("65536").ok());   // atoi: 0
  EXPECT_FALSE(ParsePort("abc").ok());     // atoi: 0
  EXPECT_FALSE(ParsePort("53x").ok());     // atoi: 53
  EXPECT_FALSE(ParsePort("0").ok());       // reserved: means kernel-assigned
  EXPECT_FALSE(ParsePort("").ok());
  EXPECT_FALSE(ParsePort("-1").ok());
  EXPECT_FALSE(ParsePort(" 53").ok());
  EXPECT_FALSE(ParsePort("999999999999999999999").ok());  // would overflow int
  ASSERT_TRUE(ParsePort("53").ok());
  EXPECT_EQ(ParsePort("53").value(), 53);
  ASSERT_TRUE(ParsePort("65535").ok());
  EXPECT_EQ(ParsePort("65535").value(), 65535);
  ASSERT_TRUE(ParsePort("1").ok());
  EXPECT_EQ(ParsePort("1").value(), 1);
}

// RFC 6891 §6.1.3: an EDNS version we do not implement gets BADVERS — header
// rcode nibble 0, extended-RCODE byte 1 in the echoed OPT — without running
// the engine, and the dedicated counter (not the 4-bit histogram) records it.
TEST(ServePacketTest, EdnsVersionAboveZeroGetsBadvers) {
  auto shard = MakeShard();
  ServerStats stats;
  std::vector<uint8_t> packet =
      EdnsQueryPacket("www.example.com", RrType::kA, 4096, /*dnssec_ok=*/true, /*version=*/1);
  ServeOutcome outcome =
      ServePacket(shard.get(), packet.data(), packet.size(), kMaxUdpPayload, &stats);
  EXPECT_TRUE(outcome.badvers);
  EXPECT_FALSE(outcome.parse_error);
  ASSERT_EQ(outcome.wire.size(), 23u);  // header + OPT echo
  EXPECT_EQ(outcome.wire[3] & 0xF, 0);  // header nibble: the low 4 bits of 16
  EXPECT_EQ(outcome.wire[11], 1);       // ARCOUNT
  EXPECT_EQ(outcome.wire[14], 41);      // TYPE=OPT
  EXPECT_EQ(outcome.wire[17], 1);       // extended RCODE: BADVERS >> 4
  EXPECT_EQ(outcome.wire[18], 0);       // our version
  EXPECT_EQ(outcome.wire[19] & 0x80, 0x80);  // DO echoed
  EXPECT_EQ(stats.badvers_responses.load(), 1u);
  EXPECT_EQ(stats.edns_queries.load(), 1u);
}

// The negotiated limit governs: an OPT advertising 4096 lets a wide answer
// through UDP untruncated, while the same query without an OPT truncates at
// 512 — and every EDNS answer echoes exactly one OPT.
TEST(ServePacketTest, EdnsPayloadLiftsTheUdpClamp) {
  Result<std::unique_ptr<AuthoritativeServer>> shard =
      AuthoritativeServer::Create(EngineVersion::kV5, WideRrsetZone());
  ASSERT_TRUE(shard.ok()) << shard.error();
  ServerStats stats;

  std::vector<uint8_t> edns = EdnsQueryPacket("www.example.com", RrType::kA, 4096);
  ServeOutcome big =
      ServePacket(shard.value().get(), edns.data(), edns.size(), kMaxUdpPayload, &stats);
  EXPECT_FALSE(big.truncated);
  EXPECT_GT(big.wire.size(), kMaxUdpPayload);
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(big.wire, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_TRUE(echoed.edns.present);
  EXPECT_EQ(view.value().answer.size(), 40u);
  EXPECT_EQ(stats.edns_queries.load(), 1u);

  // A 1232 advertisement truncates the same answer midway — and keeps the OPT.
  std::vector<uint8_t> mid = EdnsQueryPacket("www.example.com", RrType::kA, 1232);
  ServeOutcome flag_day =
      ServePacket(shard.value().get(), mid.data(), mid.size(), kMaxUdpPayload, &stats);
  EXPECT_TRUE(flag_day.truncated);
  EXPECT_LE(flag_day.wire.size(), 1232u);
  WireQuery echoed_mid;
  ASSERT_TRUE(ParseWireResponse(flag_day.wire, &echoed_mid).ok());
  EXPECT_TRUE(echoed_mid.edns.present);

  // No OPT, no negotiation: the classic 512 clamp, and no OPT in the answer.
  std::vector<uint8_t> plain = QueryPacket("www.example.com", RrType::kA);
  ServeOutcome clamped =
      ServePacket(shard.value().get(), plain.data(), plain.size(), kMaxUdpPayload, &stats);
  EXPECT_TRUE(clamped.truncated);
  EXPECT_LE(clamped.wire.size(), kMaxUdpPayload);
  WireQuery echoed_plain;
  ASSERT_TRUE(ParseWireResponse(clamped.wire, &echoed_plain).ok());
  EXPECT_FALSE(echoed_plain.edns.present);
  // EDNS governs UDP only: over TCP the transport limit wins (RFC 6891
  // §6.2.5), even for a 512-advertising client.
  std::vector<uint8_t> small = EdnsQueryPacket("www.example.com", RrType::kA, 512);
  ServeOutcome tcp =
      ServePacket(shard.value().get(), small.data(), small.size(), kMaxTcpPayload, &stats);
  EXPECT_FALSE(tcp.truncated);
}

TEST(ServePacketTest, UdpClampTruncatesAndTcpLimitServesInFull) {
  Result<std::unique_ptr<AuthoritativeServer>> shard =
      AuthoritativeServer::Create(EngineVersion::kGolden, WideRrsetZone());
  ASSERT_TRUE(shard.ok()) << shard.error();
  ServerStats stats;
  std::vector<uint8_t> packet = QueryPacket("www.example.com", RrType::kA);

  ServeOutcome udp =
      ServePacket(shard.value().get(), packet.data(), packet.size(), kMaxUdpPayload, &stats);
  EXPECT_TRUE(udp.truncated);
  EXPECT_LE(udp.wire.size(), kMaxUdpPayload);
  EXPECT_EQ(stats.truncated_responses.load(), 1u);

  ServeOutcome tcp =
      ServePacket(shard.value().get(), packet.data(), packet.size(), kMaxTcpPayload, &stats);
  EXPECT_FALSE(tcp.truncated);
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(tcp.wire, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_EQ(view.value().answer.size(), 40u);
}

}  // namespace
}  // namespace dnsv

// Integration tests for the production serving shell (src/server/server.h):
// real loopback sockets, sharded UDP workers, the TCP fallback that
// completes TC=1 truncation, hot zone reload (API + SIGHUP), and the
// malformed-packet flood the fuzz corpus feeds it. Every test skips cleanly
// in sandboxes where loopback sockets cannot be bound.
#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/fuzz/packet_gen.h"

namespace dnsv {
namespace {

ZoneConfig SmallZone(const std::string& www_ip) {
  Result<ZoneConfig> zone = ParseZoneText(
      "$ORIGIN example.com.\n"
      "@    SOA  ns1 1\n"
      "@    NS   ns1.example.com.\n"
      "www  A    " +
      www_ip + "\n");
  EXPECT_TRUE(zone.ok()) << zone.error();
  return std::move(zone).value();
}

std::string SmallZoneText(const std::string& www_ip) {
  return SmallZone(www_ip).ToText();
}

// Starts a server or skips the test (sandboxes without loopback sockets).
#define START_OR_SKIP(server, config, zone)                                  \
  std::unique_ptr<DnsServer> server;                                         \
  {                                                                          \
    Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, zone); \
    if (!started.ok()) {                                                     \
      GTEST_SKIP() << "cannot bind loopback sockets: " << started.error();   \
    }                                                                        \
    server = std::move(started).value();                                     \
  }

sockaddr_in Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// One UDP request/response exchange on a fresh socket; empty on timeout.
std::vector<uint8_t> UdpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return {};
  }
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(port);
  ::sendto(fd, request.data(), request.size(), 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
  uint8_t buffer[65536];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  if (n <= 0) {
    return {};
  }
  return std::vector<uint8_t>(buffer, buffer + n);
}

// One framed TCP exchange on a fresh connection; empty on failure.
std::vector<uint8_t> TcpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::vector<uint8_t> framed;
  if (!AppendTcpFrame(&framed, request).ok()) {
    ::close(fd);
    return {};
  }
  ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
  TcpFrameDecoder decoder;
  std::vector<uint8_t> message;
  uint8_t buffer[65536];
  while (true) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
    if (decoder.Next(&message)) {
      ::close(fd);
      return message;
    }
  }
}

std::vector<uint8_t> QueryPacket(const std::string& qname, RrType qtype, uint16_t id) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  return EncodeWireQuery(query);
}

// The engine-side reference encoding for qname/qtype at `max_size` — what a
// byte-identical server response must equal.
std::vector<uint8_t> ReferenceAnswer(const ZoneConfig& zone, const std::string& qname,
                                     RrType qtype, uint16_t id, size_t max_size) {
  Result<std::unique_ptr<AuthoritativeServer>> reference =
      AuthoritativeServer::Create(EngineVersion::kGolden, zone);
  EXPECT_TRUE(reference.ok()) << reference.error();
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse(qname).value();
  query.qtype = qtype;
  QueryResult result = reference.value()->Query(query.qname, query.qtype);
  EXPECT_FALSE(result.panicked);
  Result<std::vector<uint8_t>> encoded =
      EncodeWireResponse(query, result.response, max_size);
  EXPECT_TRUE(encoded.ok()) << encoded.error();
  return std::move(encoded).value();
}

TEST(DnsServerTest, UdpRoundTripServesTheVerifiedEngine) {
  ServerConfig config;
  config.udp_workers = 2;
  START_OR_SKIP(server, config, KitchenSinkZone());
  EXPECT_NE(server->udp_port(), 0);
  EXPECT_EQ(server->udp_port(), server->tcp_port());  // one port, both transports

  std::vector<uint8_t> reply =
      UdpExchange(server->udp_port(), QueryPacket("chain.example.com", RrType::kA, 0x4242));
  ASSERT_FALSE(reply.empty());
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(reply, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_EQ(echoed.id, 0x4242);
  EXPECT_EQ(view.value().rcode, Rcode::kNoError);
  EXPECT_EQ(view.value().answer.size(), 4u);  // 2 CNAMEs + 2 A records
  EXPECT_EQ(server->Stats().udp_queries, 1u);
}

// The acceptance path of ISSUE 5: an answer exceeding the UDP payload limit
// is served truncated with TC=1 over UDP, and byte-identical to the engine's
// full encoding over the TCP fallback.
TEST(DnsServerTest, TruncatedUdpAnswerIsServedInFullOverTcpByteIdentically) {
  ServerConfig config;
  config.udp_workers = 2;
  ZoneConfig zone = WideRrsetZone();
  START_OR_SKIP(server, config, zone);
  std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x7777);

  std::vector<uint8_t> udp_reply = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(udp_reply.empty());
  ASSERT_LE(udp_reply.size(), kMaxUdpPayload);
  bool truncated = false;
  WireQuery echoed;
  Result<ResponseView> udp_view = ParseWireResponse(udp_reply, &echoed, &truncated);
  ASSERT_TRUE(udp_view.ok()) << udp_view.error();
  EXPECT_TRUE(truncated) << "oversized answer must carry TC=1 over UDP";
  EXPECT_LT(udp_view.value().answer.size(), 40u);
  // The UDP bytes themselves must be the engine's truncated encoding.
  EXPECT_EQ(udp_reply,
            ReferenceAnswer(zone, "www.example.com", RrType::kA, 0x7777, kMaxUdpPayload));

  std::vector<uint8_t> tcp_reply = TcpExchange(server->tcp_port(), request);
  ASSERT_FALSE(tcp_reply.empty());
  EXPECT_EQ(tcp_reply,
            ReferenceAnswer(zone, "www.example.com", RrType::kA, 0x7777, kMaxTcpPayload))
      << "TCP fallback must be byte-identical to the engine's full encoding";
  Result<ResponseView> tcp_view = ParseWireResponse(tcp_reply, &echoed, &truncated);
  ASSERT_TRUE(tcp_view.ok()) << tcp_view.error();
  EXPECT_FALSE(truncated);
  EXPECT_EQ(tcp_view.value().answer.size(), 40u);

  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.truncated_responses, 1u);
  EXPECT_EQ(stats.tcp_queries, 1u);
  EXPECT_EQ(stats.tcp_connections, 1u);
}

TEST(DnsServerTest, MultiWorkerLoadAnswersConsistently) {
  ServerConfig config;
  config.udp_workers = 4;
  ZoneConfig zone = KitchenSinkZone();
  START_OR_SKIP(server, config, zone);
  const std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x1111);
  const std::vector<uint8_t> expected =
      ReferenceAnswer(zone, "www.example.com", RrType::kA, 0x1111, kMaxUdpPayload);

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> dropped{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // A fresh socket per query: new 4-tuples keep SO_REUSEPORT spreading
        // the flow across all worker sockets.
        std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
        if (reply.empty()) {
          dropped.fetch_add(1);
        } else if (reply != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(dropped.load(), 0);
  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.udp_queries, static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_EQ(stats.rcodes[0], stats.udp_queries);
}

TEST(DnsServerTest, HotReloadSwapsZonesWithoutDroppingQueries) {
  ServerConfig config;
  config.udp_workers = 2;
  START_OR_SKIP(server, config, SmallZone("10.0.0.1"));
  const std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x2222);
  constexpr int64_t kOldIp = 0x0A000001;
  constexpr int64_t kNewIp = 0x0A000002;

  std::atomic<bool> reload_done{false};
  std::atomic<int> dropped{0};
  std::atomic<int> bad_answers{0};
  std::atomic<int> new_ip_seen{0};
  std::thread client([&] {
    // Query continuously across the swap: every query must get an answer,
    // and every answer must be one of the two published zones' — never an
    // error, never a mix.
    for (int i = 0; i < 200 || !reload_done.load(); ++i) {
      std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
      if (reply.empty()) {
        dropped.fetch_add(1);
        continue;
      }
      Result<ResponseView> view = ParseWireResponse(reply, nullptr);
      if (!view.ok() || view.value().rcode != Rcode::kNoError ||
          view.value().answer.size() != 1) {
        bad_answers.fetch_add(1);
        continue;
      }
      int64_t ip = view.value().answer[0].rdata_value;
      if (ip == kNewIp) {
        new_ip_seen.fetch_add(1);
      } else if (ip != kOldIp) {
        bad_answers.fetch_add(1);
      }
      if (i > 100000) {
        break;  // reload failed; the loop guard below reports it
      }
    }
  });
  Status reloaded = server->Reload(SmallZone("10.0.0.2"));
  EXPECT_TRUE(reloaded.ok()) << reloaded.message();
  EXPECT_EQ(server->generation(), 2u);
  reload_done.store(true);
  client.join();
  EXPECT_EQ(dropped.load(), 0);
  EXPECT_EQ(bad_answers.load(), 0);

  // After the swap settles, the new zone is what every worker serves.
  std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(reply.empty());
  Result<ResponseView> view = ParseWireResponse(reply, nullptr);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.value().answer.size(), 1u);
  EXPECT_EQ(view.value().answer[0].rdata_value, kNewIp);

  // A broken zone is rejected at publish time and the good one keeps serving.
  ZoneConfig broken;  // no SOA, no origin
  Status rejected = server->Reload(broken);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(server->generation(), 2u);
  reply = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(reply.empty());
  view = ParseWireResponse(reply, nullptr);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.value().answer.size(), 1u);
  EXPECT_EQ(view.value().answer[0].rdata_value, kNewIp);
}

TEST(DnsServerTest, SighupReloadsTheZoneFile) {
  std::string path = testing::TempDir() + "/dnsv_sighup_reload.zone";
  {
    std::ofstream out(path);
    out << SmallZoneText("10.0.0.1");
  }
  ServerConfig config;
  START_OR_SKIP(server, config, SmallZone("10.0.0.1"));
  SignalReloader reloader(server.get(), path);
  const std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x3333);

  {
    std::ofstream out(path);
    out << SmallZoneText("10.0.0.2");
  }
  ASSERT_EQ(::kill(::getpid(), SIGHUP), 0);

  // The reloader consumes the signal and republishes; poll until the answer
  // flips (the swap is asynchronous but must land within seconds).
  int64_t ip = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
    ASSERT_FALSE(reply.empty());
    Result<ResponseView> view = ParseWireResponse(reply, nullptr);
    ASSERT_TRUE(view.ok());
    ASSERT_EQ(view.value().answer.size(), 1u);
    ip = view.value().answer[0].rdata_value;
    if (ip == 0x0A000002) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(ip, 0x0A000002);
  EXPECT_EQ(reloader.reloads(), 1u);
  EXPECT_EQ(server->generation(), 2u);

  // A SIGHUP pointing at a broken file keeps the old zone serving.
  {
    std::ofstream out(path);
    out << "this is not a zone file\n";
  }
  ASSERT_EQ(::kill(::getpid(), SIGHUP), 0);
  for (int attempt = 0; attempt < 100 && reloader.failures() == 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(reloader.failures(), 1u);
  EXPECT_EQ(server->generation(), 2u);
  std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
  ASSERT_FALSE(reply.empty());
  Result<ResponseView> view = ParseWireResponse(reply, nullptr);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.value().answer.size(), 1u);
  EXPECT_EQ(view.value().answer[0].rdata_value, 0x0A000002);
  std::filesystem::remove(path);
}

TEST(DnsServerTest, MalformedFloodLeavesStatsConsistentAndProcessAlive) {
  ServerConfig config;
  config.udp_workers = 2;
  START_OR_SKIP(server, config, KitchenSinkZone());

  // The fuzz corpus's reject packets plus deterministic junk.
  std::vector<std::vector<uint8_t>> packets;
  for (const auto& entry : std::filesystem::directory_iterator(DNSV_WIRE_CORPUS_DIR)) {
    if (entry.path().extension() != ".hex") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    Result<std::vector<uint8_t>> packet = HexToWirePacket(text.str());
    ASSERT_TRUE(packet.ok()) << packet.error();
    packets.push_back(std::move(packet).value());
  }
  ASSERT_GE(packets.size(), 10u);

  constexpr int kThreads = 4;
  constexpr int kPacketsPerThread = 150;
  std::atomic<int> unanswered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kPacketsPerThread; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        std::vector<uint8_t> packet;
        if (i % 3 == 0) {
          // Raw junk of pseudo-random length (0 is a valid UDP datagram —
          // the server owes no reply for those, so skip length 0 here).
          size_t len = 1 + (rng % 64);
          packet.resize(len);
          for (size_t b = 0; b < len; ++b) {
            packet[b] = static_cast<uint8_t>((rng >> (b % 56)) & 0xff);
          }
        } else {
          packet = packets[rng % packets.size()];
        }
        // Every non-empty datagram gets exactly one response (FORMERR at
        // worst) — a flood must never make the server go silent or die.
        if (UdpExchange(server->udp_port(), packet).empty()) {
          unanswered.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  EXPECT_EQ(unanswered.load(), 0);

  // The process is alive and still serves real queries correctly.
  std::vector<uint8_t> reply =
      UdpExchange(server->udp_port(), QueryPacket("www.example.com", RrType::kA, 0x5555));
  ASSERT_FALSE(reply.empty());
  Result<ResponseView> view = ParseWireResponse(reply, nullptr);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().rcode, Rcode::kNoError);

  // Counter consistency: every served packet was counted once, with exactly
  // one rcode; parse failures are a subset of queries.
  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.udp_queries, static_cast<uint64_t>(kThreads * kPacketsPerThread) + 1);
  EXPECT_GT(stats.parse_failures, 0u);
  EXPECT_LE(stats.parse_failures, stats.udp_queries);
  uint64_t rcode_total = 0;
  for (uint64_t count : stats.rcodes) {
    rcode_total += count;
  }
  // BADVERS (rcode 16) lives outside the 4-bit histogram; its dedicated
  // counter completes the books. The corpus's query_badvers_version1.hex
  // guarantees the path is exercised by the flood.
  EXPECT_EQ(rcode_total + stats.badvers_responses, stats.queries());
  EXPECT_GT(stats.badvers_responses, 0u);
  EXPECT_EQ(stats.servfail_fallbacks, 0u);  // corpus packets never reach the fallback
}

TEST(DnsServerTest, TcpConnectionCapRejectsTheExcessConnection) {
  ServerConfig config;
  config.max_tcp_connections = 2;
  START_OR_SKIP(server, config, KitchenSinkZone());
  std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x6666);

  // Two served connections hold their slots...
  auto open_and_query = [&](int* fd_out) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SetRecvTimeout(fd, 5);
    sockaddr_in addr = Loopback(server->tcp_port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    std::vector<uint8_t> framed;
    ASSERT_TRUE(AppendTcpFrame(&framed, request).ok());
    ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
    TcpFrameDecoder decoder;
    std::vector<uint8_t> message;
    uint8_t buffer[65536];
    while (true) {
      ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      ASSERT_GT(n, 0);
      decoder.Feed(buffer, static_cast<size_t>(n));
      if (decoder.Next(&message)) {
        break;
      }
    }
    *fd_out = fd;
  };
  int held1 = -1, held2 = -1;
  open_and_query(&held1);
  open_and_query(&held2);
  if (HasFatalFailure()) {
    return;
  }

  // ...so the third is accepted and immediately closed.
  int rejected = ::socket(AF_INET, SOCK_STREAM, 0);
  SetRecvTimeout(rejected, 5);
  sockaddr_in addr = Loopback(server->tcp_port());
  ASSERT_EQ(::connect(rejected, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  uint8_t buffer[16];
  EXPECT_EQ(::recv(rejected, buffer, sizeof(buffer), 0), 0) << "expected an orderly close";
  ::close(rejected);
  ::close(held1);
  ::close(held2);
  EXPECT_GE(server->Stats().tcp_rejected, 1u);
}

TEST(DnsServerTest, TcpIdleConnectionsAreReaped) {
  ServerConfig config;
  config.tcp_idle_timeout_ms = 150;
  START_OR_SKIP(server, config, KitchenSinkZone());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(server->tcp_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Send nothing: the sweep must close us (recv sees EOF, not a timeout).
  uint8_t buffer[16];
  EXPECT_EQ(::recv(fd, buffer, sizeof(buffer), 0), 0);
  ::close(fd);
  EXPECT_GE(server->Stats().tcp_timeouts, 1u);
}

TEST(DnsServerTest, GracefulShutdownDrainsTheInFlightTcpQuery) {
  ServerConfig config;
  config.drain_timeout_ms = 500;
  START_OR_SKIP(server, config, KitchenSinkZone());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SetRecvTimeout(fd, 5);
  sockaddr_in addr = Loopback(server->tcp_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<uint8_t> framed;
  ASSERT_TRUE(AppendTcpFrame(&framed, QueryPacket("www.example.com", RrType::kA, 0x8888)).ok());
  ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);

  // Stop() must not cut off the connection before the queued query is
  // answered: the drain phase serves what is already connected.
  std::thread stopper([&] { server->Stop(); });
  TcpFrameDecoder decoder;
  std::vector<uint8_t> message;
  uint8_t buffer[65536];
  bool got_reply = false;
  while (!got_reply) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
    got_reply = decoder.Next(&message);
  }
  stopper.join();
  ::close(fd);
  ASSERT_TRUE(got_reply) << "drain must serve the in-flight query";
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(message, &echoed);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_EQ(echoed.id, 0x8888);
}

TEST(DnsServerTest, ShardMemoryHygieneRebuildsWithoutChangingAnswers) {
  ServerConfig config;
  // Below the zone image's own block count: the engine reclaims query-scoped
  // blocks itself nowadays, so only a limit this tiny still trips the
  // serving shell's defense-in-depth rebuild.
  config.shard_memory_limit_blocks = 8;
  ZoneConfig zone = KitchenSinkZone();
  START_OR_SKIP(server, config, zone);
  const std::vector<uint8_t> request = QueryPacket("www.example.com", RrType::kA, 0x9999);
  const std::vector<uint8_t> expected =
      ReferenceAnswer(zone, "www.example.com", RrType::kA, 0x9999, kMaxUdpPayload);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint8_t> reply = UdpExchange(server->udp_port(), request);
    ASSERT_FALSE(reply.empty()) << "query " << i;
    EXPECT_EQ(reply, expected) << "query " << i;
  }
  EXPECT_GE(server->Stats().shard_rebuilds, 1u);
}

TEST(DnsServerTest, StartRejectsAnInvalidZone) {
  ServerConfig config;
  ZoneConfig broken;  // empty: no SOA at the apex
  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, broken);
  EXPECT_FALSE(started.ok());
}

TEST(DnsServerTest, StatsJsonIsWellFormedEnoughToGrep) {
  ServerConfig config;
  START_OR_SKIP(server, config, KitchenSinkZone());
  std::vector<uint8_t> reply =
      UdpExchange(server->udp_port(), QueryPacket("www.example.com", RrType::kA, 0xAAAA));
  ASSERT_FALSE(reply.empty());
  std::string json = server->StatsJson();
  EXPECT_NE(json.find("\"udp_queries\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"generation\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos) << json;
}

}  // namespace
}  // namespace dnsv

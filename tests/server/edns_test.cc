// EDNS(0) acceptance tests over real loopback sockets (ISSUE 10): a client
// advertising a 4096-byte payload receives the wide answer in full over UDP
// where a plain client gets TC=1 at 512, the negotiated limit is honored
// byte-identically against the engine's reference encoding, BADVERS is
// served without touching the engine, and the stats JSON exposes the new
// counters. Every test skips cleanly in sandboxes without loopback sockets.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/server/server.h"

namespace dnsv {
namespace {

#define START_OR_SKIP(server, config, zone)                                  \
  std::unique_ptr<DnsServer> server;                                         \
  {                                                                          \
    Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, zone); \
    if (!started.ok()) {                                                     \
      GTEST_SKIP() << "cannot bind loopback sockets: " << started.error();   \
    }                                                                        \
    server = std::move(started).value();                                     \
  }

sockaddr_in Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::vector<uint8_t> UdpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return {};
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = Loopback(port);
  ::sendto(fd, request.data(), request.size(), 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
  uint8_t buffer[65536];
  ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  if (n <= 0) {
    return {};
  }
  return std::vector<uint8_t>(buffer, buffer + n);
}

std::vector<uint8_t> TcpExchange(uint16_t port, const std::vector<uint8_t>& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = Loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::vector<uint8_t> framed;
  if (!AppendTcpFrame(&framed, request).ok()) {
    ::close(fd);
    return {};
  }
  ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
  TcpFrameDecoder decoder;
  std::vector<uint8_t> message;
  uint8_t buffer[65536];
  while (true) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
    if (decoder.Next(&message)) {
      ::close(fd);
      return message;
    }
  }
}

WireQuery WideQuery(uint16_t id) {
  WireQuery query;
  query.id = id;
  query.qname = DnsName::Parse("www.example.com").value();
  query.qtype = RrType::kA;
  return query;
}

// The engine's reference encoding of the wide answer at `max_size` for
// exactly `query` — EDNS negotiation must reproduce these bytes.
std::vector<uint8_t> ReferenceAnswer(const ZoneConfig& zone, const WireQuery& query,
                                     size_t max_size) {
  Result<std::unique_ptr<AuthoritativeServer>> reference =
      AuthoritativeServer::Create(EngineVersion::kV5, zone);
  EXPECT_TRUE(reference.ok()) << reference.error();
  QueryResult result = reference.value()->Query(query.qname, query.qtype);
  EXPECT_FALSE(result.panicked);
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query, result.response, max_size);
  EXPECT_TRUE(encoded.ok()) << encoded.error();
  return std::move(encoded).value();
}

// The ISSUE 10 acceptance path: the wide RRset that forced a TCP retry for
// every client now fits in one UDP datagram for an EDNS client — and the
// plain client's behavior is unchanged.
TEST(EdnsAcceptanceTest, Payload4096ServesTheWideAnswerInOneUdpDatagram) {
  ServerConfig config;
  config.udp_workers = 2;
  config.version = EngineVersion::kV5;
  ZoneConfig zone = WideRrsetZone();
  START_OR_SKIP(server, config, zone);

  // Plain 512-byte client: TC=1, partial answer — the pre-EDNS contract.
  WireQuery plain = WideQuery(0x1001);
  std::vector<uint8_t> plain_reply = UdpExchange(server->udp_port(), EncodeWireQuery(plain));
  ASSERT_FALSE(plain_reply.empty());
  ASSERT_LE(plain_reply.size(), kMaxUdpPayload);
  bool truncated = false;
  WireQuery echoed;
  Result<ResponseView> plain_view = ParseWireResponse(plain_reply, &echoed, &truncated);
  ASSERT_TRUE(plain_view.ok()) << plain_view.error();
  EXPECT_TRUE(truncated);
  EXPECT_FALSE(echoed.edns.present) << "a plain query must not grow an OPT";
  EXPECT_EQ(plain_reply, ReferenceAnswer(zone, plain, kMaxUdpPayload));

  // EDNS 4096 client: the same question, served in full over UDP.
  WireQuery edns = WideQuery(0x1002);
  edns.edns.present = true;
  edns.edns.udp_payload = 4096;
  std::vector<uint8_t> edns_reply = UdpExchange(server->udp_port(), EncodeWireQuery(edns));
  ASSERT_FALSE(edns_reply.empty());
  EXPECT_GT(edns_reply.size(), kMaxUdpPayload);
  Result<ResponseView> edns_view = ParseWireResponse(edns_reply, &echoed, &truncated);
  ASSERT_TRUE(edns_view.ok()) << edns_view.error();
  EXPECT_FALSE(truncated);
  EXPECT_EQ(edns_view.value().answer.size(), 40u);
  EXPECT_TRUE(echoed.edns.present) << "the response must echo the OPT";
  EXPECT_EQ(edns_reply, ReferenceAnswer(zone, edns, 4096));

  // The plain client's TCP retry still gets the full answer, byte-identical
  // to the engine's unclamped encoding.
  std::vector<uint8_t> tcp_reply = TcpExchange(server->tcp_port(), EncodeWireQuery(plain));
  ASSERT_FALSE(tcp_reply.empty());
  EXPECT_EQ(tcp_reply, ReferenceAnswer(zone, plain, kMaxTcpPayload));

  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.edns_queries, 1u);
  EXPECT_EQ(stats.truncated_responses, 1u);  // only the plain UDP answer
}

// RFC 6891 §6.2.5: the advertised payload governs UDP only — over TCP the
// transport limit wins, even when the client advertises 512.
TEST(EdnsAcceptanceTest, TcpIgnoresTheAdvertisedPayload) {
  ServerConfig config;
  config.version = EngineVersion::kV5;
  ZoneConfig zone = WideRrsetZone();
  START_OR_SKIP(server, config, zone);
  WireQuery query = WideQuery(0x2001);
  query.edns.present = true;
  query.edns.udp_payload = 512;
  std::vector<uint8_t> reply = TcpExchange(server->tcp_port(), EncodeWireQuery(query));
  ASSERT_FALSE(reply.empty());
  bool truncated = true;
  WireQuery echoed;
  Result<ResponseView> view = ParseWireResponse(reply, &echoed, &truncated);
  ASSERT_TRUE(view.ok()) << view.error();
  EXPECT_FALSE(truncated);
  EXPECT_EQ(view.value().answer.size(), 40u);
  EXPECT_TRUE(echoed.edns.present);
}

TEST(EdnsAcceptanceTest, BadversIsServedOverLoopbackAndCounted) {
  ServerConfig config;
  config.version = EngineVersion::kV5;
  START_OR_SKIP(server, config, KitchenSinkZone());
  WireQuery query = WideQuery(0x3001);
  query.edns.present = true;
  query.edns.version = 1;
  std::vector<uint8_t> reply = UdpExchange(server->udp_port(), EncodeWireQuery(query));
  ASSERT_EQ(reply.size(), 23u);  // header + OPT echo, no question section
  EXPECT_EQ(reply[0], 0x30);     // the client's ID survives
  EXPECT_EQ(reply[1], 0x01);
  EXPECT_EQ(reply[3] & 0xF, 0);  // BADVERS: header nibble 0 ...
  EXPECT_EQ(reply[17], 1);       // ... extended-RCODE byte 1
  EXPECT_EQ(reply[18], 0);       // the version we do implement

  StatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.badvers_responses, 1u);
  EXPECT_EQ(stats.edns_queries, 1u);
  std::string json = server->StatsJson();
  EXPECT_NE(json.find("\"edns_queries\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"badvers_responses\": 1"), std::string::npos) << json;
}

}  // namespace
}  // namespace dnsv

#include "src/interp/value.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(Value, EqualityBasics) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_NE(Value::Int(1), Value::Bool(true));
  EXPECT_EQ(Value::NullPtr(), Value::NullPtr());
  EXPECT_NE(Value::Ptr(1), Value::NullPtr());
  EXPECT_NE(Value::Ptr(1, {0}), Value::Ptr(1, {1}));
}

TEST(Value, AggregateEquality) {
  Value a = Value::Struct({Value::Int(1), Value::List({Value::Int(2)})});
  Value b = Value::Struct({Value::Int(1), Value::List({Value::Int(2)})});
  EXPECT_EQ(a, b);
  b.elems[1].elems.push_back(Value::Int(3));
  EXPECT_NE(a, b);
}

TEST(Value, ToStringReadable) {
  Value v = Value::Struct({Value::Int(7), Value::List({Value::Bool(true)}), Value::NullPtr()});
  EXPECT_EQ(v.ToString(), "{7, [true], null}");
  EXPECT_EQ(Value::Ptr(3, {1, 0}).ToString(), "&b3.1.0");
}

TEST(ZeroValue, AllKinds) {
  TypeTable types;
  Type node = types.StructType("Node");
  types.DefineStruct("Node", {{"x", types.IntType()},
                              {"flag", types.BoolType()},
                              {"next", types.PtrTo(node)},
                              {"labels", types.ListOf(types.IntType())}});
  Value zero = ZeroValueOf(types, node);
  ASSERT_EQ(zero.kind, Value::Kind::kStruct);
  ASSERT_EQ(zero.elems.size(), 4u);
  EXPECT_EQ(zero.elems[0], Value::Int(0));
  EXPECT_EQ(zero.elems[1], Value::Bool(false));
  EXPECT_TRUE(zero.elems[2].IsNullPtr());
  EXPECT_EQ(zero.elems[3], Value::List());
}

TEST(ConcreteMemory, AllocAndResolve) {
  ConcreteMemory memory;
  BlockIndex b = memory.Alloc(Value::Struct({Value::Int(1), Value::List({Value::Int(5)})}));
  ASSERT_NE(memory.Resolve(b, {}), nullptr);
  EXPECT_EQ(*memory.Resolve(b, {0}), Value::Int(1));
  EXPECT_EQ(*memory.Resolve(b, {1, 0}), Value::Int(5));
  EXPECT_EQ(memory.Resolve(b, {1, 3}), nullptr);   // beyond list length
  EXPECT_EQ(memory.Resolve(b, {0, 0}), nullptr);   // through a scalar
  EXPECT_EQ(memory.Resolve(kNullBlockIndex, {}), nullptr);
}

TEST(ConcreteMemory, StoresThroughResolvedPointer) {
  ConcreteMemory memory;
  BlockIndex b = memory.Alloc(Value::List({Value::Int(1), Value::Int(2)}));
  *memory.Resolve(b, {1}) = Value::Int(9);
  EXPECT_EQ(*memory.Resolve(b, {1}), Value::Int(9));
}

}  // namespace
}  // namespace dnsv

// Edge-case tests of MiniGo semantics through the full pipeline: nested
// aggregates, recursion limits, scoping corners, and Go-value-semantics
// subtleties that the engine relies on.
#include <gtest/gtest.h>

#include "src/frontend/frontend.h"
#include "src/interp/interp.h"

namespace dnsv {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  ExecOutcome Run(const std::string& source, const std::string& fn,
                  const std::vector<Value>& args) {
    types_ = std::make_unique<TypeTable>();
    module_ = std::make_unique<Module>(types_.get());
    Result<CompileOutput> compiled = CompileMiniGo({{"test.mg", source}}, module_.get());
    EXPECT_TRUE(compiled.ok()) << compiled.error();
    memory_ = std::make_unique<ConcreteMemory>();
    Interpreter interp(module_.get(), memory_.get());
    return interp.Run(*module_->GetFunction(fn), args);
  }

  int64_t RunInt(const std::string& source, const std::string& fn,
                 const std::vector<Value>& args) {
    ExecOutcome outcome = Run(source, fn, args);
    EXPECT_TRUE(outcome.ok()) << outcome.panic_message;
    return outcome.return_value.i;
  }

  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
  std::unique_ptr<ConcreteMemory> memory_;
};

TEST_F(EdgeTest, NestedLists) {
  EXPECT_EQ(RunInt(R"(
func f() int {
  grid := make([][]int)
  for r := 0; r < 3; r = r + 1 {
    row := make([]int)
    for c := 0; c < 3; c = c + 1 {
      row = append(row, r*3 + c)
    }
    grid = append(grid, row)
  }
  return grid[1][2] + grid[2][0]
}
)", "f", {}),
            5 + 6);
}

TEST_F(EdgeTest, StructInStructByValue) {
  EXPECT_EQ(RunInt(R"(
type Inner struct { v int }
type Outer struct { a Inner; b Inner }
func f() int {
  var o Outer
  o.a.v = 3
  o.b = o.a
  o.a.v = 10
  return o.b.v
}
)", "f", {}),
            3);  // b received a copy
}

TEST_F(EdgeTest, RecursionDepthLimitTrapsCleanly) {
  ExecOutcome outcome = Run(R"(
func down(n int) int {
  return down(n + 1)
}
)", "down", {Value::Int(0)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_NE(outcome.panic_message.find("call depth"), std::string::npos);
}

TEST_F(EdgeTest, ForInitVariableScopedPerLoop) {
  EXPECT_EQ(RunInt(R"(
func f() int {
  total := 0
  for i := 0; i < 3; i = i + 1 {
    total = total + i
  }
  for i := 10; i < 13; i = i + 1 {
    total = total + i
  }
  return total
}
)", "f", {}),
            0 + 1 + 2 + 10 + 11 + 12);
}

TEST_F(EdgeTest, ShadowedVariableRestoredAfterBlock) {
  EXPECT_EQ(RunInt(R"(
func f() int {
  x := 1
  {
    x := 100
    x = x + 1
  }
  return x
}
)", "f", {}),
            1);
}

TEST_F(EdgeTest, ListOfPointersTraversal) {
  EXPECT_EQ(RunInt(R"(
type Node struct { v int }
func f() int {
  nodes := make([]*Node, 0)
  for i := 0; i < 4; i = i + 1 {
    n := new(Node)
    n.v = i * i
    nodes = append(nodes, n)
  }
  nodes[2].v = 99
  s := 0
  for i := 0; i < len(nodes); i = i + 1 {
    s = s + nodes[i].v
  }
  return s
}
)", "f", {}),
            0 + 1 + 99 + 9);
}

TEST_F(EdgeTest, PointerAliasingThroughList) {
  // Unlike lists (value semantics), pointers alias: mutating through one
  // copy of the pointer is visible through the other.
  EXPECT_EQ(RunInt(R"(
type Node struct { v int }
func f() int {
  a := new(Node)
  b := a
  b.v = 42
  return a.v
}
)", "f", {}),
            42);
}

TEST_F(EdgeTest, NegativeNumbersAndUnaryMinus) {
  EXPECT_EQ(RunInt("const NEG = -7\nfunc f(x int) int { return -x + NEG }", "f",
                   {Value::Int(3)}),
            -10);
}

TEST_F(EdgeTest, ListSetThroughIndexAssignment) {
  EXPECT_EQ(RunInt(R"(
func f() int {
  xs := make([]int)
  for i := 0; i < 5; i = i + 1 {
    xs = append(xs, 0)
  }
  for i := 0; i < 5; i = i + 1 {
    xs[i] = i * 2
  }
  return xs[4]
}
)", "f", {}),
            8);
}

TEST_F(EdgeTest, WhileStyleLoopWithComplexCondition) {
  EXPECT_EQ(RunInt(R"(
func f(n int) int {
  steps := 0
  for n != 1 && steps < 100 {
    if n % 2 == 0 {
      n = n / 2
    } else {
      n = 3*n + 1
    }
    steps = steps + 1
  }
  return steps
}
)", "f", {Value::Int(6)}),
            8);  // 6 -> 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1
}

TEST_F(EdgeTest, EarlyReturnInsideNestedLoops) {
  EXPECT_EQ(RunInt(R"(
func find(grid [][]int, needle int) int {
  for r := 0; r < len(grid); r = r + 1 {
    row := grid[r]
    for c := 0; c < len(row); c = c + 1 {
      if row[c] == needle {
        return r * 100 + c
      }
    }
  }
  return -1
}
func f() int {
  grid := make([][]int)
  row0 := make([]int)
  row0 = append(row0, 5)
  row0 = append(row0, 6)
  grid = append(grid, row0)
  row1 := make([]int)
  row1 = append(row1, 7)
  row1 = append(row1, 8)
  grid = append(grid, row1)
  return find(grid, 8)
}
)", "f", {}),
            101);
}

}  // namespace
}  // namespace dnsv

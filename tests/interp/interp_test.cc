// End-to-end pipeline tests: MiniGo source -> AbsIR -> concrete execution.
#include "src/interp/interp.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"

namespace dnsv {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  // Compiles `source` and runs `fn` with `args`.
  ExecOutcome Run(const std::string& source, const std::string& fn,
                  const std::vector<Value>& args) {
    types_ = std::make_unique<TypeTable>();
    module_ = std::make_unique<Module>(types_.get());
    Result<CompileOutput> compiled = CompileMiniGo({{"test.mg", source}}, module_.get());
    EXPECT_TRUE(compiled.ok()) << compiled.error();
    memory_ = std::make_unique<ConcreteMemory>();
    Interpreter interp(module_.get(), memory_.get());
    Function* function = module_->GetFunction(fn);
    EXPECT_NE(function, nullptr);
    return interp.Run(*function, args);
  }

  int64_t RunInt(const std::string& source, const std::string& fn,
                 const std::vector<Value>& args) {
    ExecOutcome outcome = Run(source, fn, args);
    EXPECT_TRUE(outcome.ok()) << outcome.panic_message;
    EXPECT_EQ(outcome.return_value.kind, Value::Kind::kInt);
    return outcome.return_value.i;
  }

  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
  std::unique_ptr<ConcreteMemory> memory_;
};

TEST_F(PipelineTest, Arithmetic) {
  EXPECT_EQ(RunInt("func f(a int, b int) int { return a*b + a - b/2 }", "f",
                   {Value::Int(7), Value::Int(4)}),
            7 * 4 + 7 - 2);
}

TEST_F(PipelineTest, GoDivModSemantics) {
  EXPECT_EQ(RunInt("func f(a int, b int) int { return a / b }", "f",
                   {Value::Int(-7), Value::Int(2)}),
            -3);
  EXPECT_EQ(RunInt("func f(a int, b int) int { return a % b }", "f",
                   {Value::Int(-7), Value::Int(2)}),
            -1);
}

TEST_F(PipelineTest, Recursion) {
  EXPECT_EQ(RunInt(R"(
func fib(n int) int {
  if n < 2 {
    return n
  }
  return fib(n-1) + fib(n-2)
}
)", "fib", {Value::Int(10)}),
            55);
}

TEST_F(PipelineTest, LoopsAndBreakContinue) {
  EXPECT_EQ(RunInt(R"(
func f(n int) int {
  s := 0
  for i := 0; i < n; i = i + 1 {
    if i % 2 == 0 {
      continue
    }
    if i > 7 {
      break
    }
    s = s + i
  }
  return s
}
)", "f", {Value::Int(100)}),
            1 + 3 + 5 + 7);
}

TEST_F(PipelineTest, ShortCircuitDoesNotEvaluateRhs) {
  // rhs would panic via division by zero if evaluated.
  EXPECT_EQ(RunInt(R"(
func f(x int) int {
  if x > 0 || 1/x > 0 {
    return 1
  }
  return 0
}
)", "f", {Value::Int(5)}),
            1);
}

TEST_F(PipelineTest, ListBuildAndSum) {
  EXPECT_EQ(RunInt(R"(
func f(n int) int {
  l := make([]int)
  for i := 0; i < n; i = i + 1 {
    l = append(l, i*i)
  }
  s := 0
  for i := 0; i < len(l); i = i + 1 {
    s = s + l[i]
  }
  return s
}
)", "f", {Value::Int(5)}),
            0 + 1 + 4 + 9 + 16);
}

TEST_F(PipelineTest, ListEqBuiltin) {
  EXPECT_EQ(RunInt(R"(
func f() int {
  a := make([]int)
  a = append(a, 1)
  a = append(a, 2)
  b := make([]int)
  b = append(b, 1)
  b = append(b, 2)
  if listEq(a, b) {
    return 1
  }
  return 0
}
)", "f", {}),
            1);
}

TEST_F(PipelineTest, StructsOnHeap) {
  EXPECT_EQ(RunInt(R"(
type Response struct {
  rcode int
  answers []int
}
func f() int {
  r := new(Response)
  r.rcode = 3
  r.answers = append(r.answers, 10)
  r.answers = append(r.answers, 20)
  return r.rcode + r.answers[1]
}
)", "f", {}),
            23);
}

TEST_F(PipelineTest, LinkedStructTraversal) {
  EXPECT_EQ(RunInt(R"(
type Node struct {
  value int
  next *Node
}
func f(n int) int {
  var head *Node
  for i := 0; i < n; i = i + 1 {
    fresh := new(Node)
    fresh.value = i
    fresh.next = head
    head = fresh
  }
  s := 0
  cur := head
  for cur != nil {
    s = s + cur.value
    cur = cur.next
  }
  return s
}
)", "f", {Value::Int(5)}),
            0 + 1 + 2 + 3 + 4);
}

TEST_F(PipelineTest, ValueSemanticsOfStructLocals) {
  // Copies do not alias — MiniGo structs/lists are value types.
  EXPECT_EQ(RunInt(R"(
type P struct { x int }
func f() int {
  var a P
  a.x = 1
  b := a
  b.x = 99
  return a.x
}
)", "f", {}),
            1);
}

TEST_F(PipelineTest, CustomStackFromThePaper) {
  // Figures 2/3: push stores at the level index, then increments it; the
  // external isFull check reads the level field directly.
  EXPECT_EQ(RunInt(R"(
type Stack struct {
  data []int
  level int
}
func push(s *Stack, v int) {
  s.data[s.level] = v
  s.level = s.level + 1
}
func f() int {
  s := new(Stack)
  for i := 0; i < 8; i = i + 1 {
    s.data = append(s.data, 0)
  }
  push(s, 5)
  push(s, 7)
  if s.level != 2 {
    return -1
  }
  return s.data[0] * 100 + s.data[1]
}
)", "f", {}),
            507);
}

TEST_F(PipelineTest, NilDereferencePanics) {
  ExecOutcome outcome = Run(R"(
type T struct { x int }
func f(p *T) int { return p.x }
)", "f", {Value::NullPtr()});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "nil pointer dereference");
}

TEST_F(PipelineTest, IndexOutOfRangePanics) {
  ExecOutcome outcome = Run(R"(
func f(i int) int {
  l := make([]int)
  l = append(l, 1)
  return l[i]
}
)", "f", {Value::Int(5)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "index out of range");
}

TEST_F(PipelineTest, NegativeIndexPanics) {
  ExecOutcome outcome = Run(R"(
func f(i int) int {
  l := make([]int)
  l = append(l, 1)
  return l[i]
}
)", "f", {Value::Int(-1)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "index out of range");
}

TEST_F(PipelineTest, DivideByZeroPanics) {
  ExecOutcome outcome = Run("func f(a int, b int) int { return a / b }", "f",
                            {Value::Int(1), Value::Int(0)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "integer divide by zero");
}

TEST_F(PipelineTest, ExplicitPanic) {
  ExecOutcome outcome = Run(R"(
func f(x int) int {
  if x == 42 {
    panic("the answer")
  }
  return x
}
)", "f", {Value::Int(42)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "the answer");
}

TEST_F(PipelineTest, StepLimitStopsInfiniteLoop) {
  ExecOutcome outcome = Run("func f() { for { } }", "f", {});
  EXPECT_EQ(outcome.kind, ExecOutcome::Kind::kStepLimit);
}

TEST_F(PipelineTest, MissingReturnTrap) {
  ExecOutcome outcome = Run("func f(x int) int { if x > 0 { return 1 } }", "f",
                            {Value::Int(-5)});
  ASSERT_EQ(outcome.kind, ExecOutcome::Kind::kPanicked);
  EXPECT_EQ(outcome.panic_message, "missing return");
}

TEST_F(PipelineTest, ListOfStructs) {
  EXPECT_EQ(RunInt(R"(
type RR struct {
  rtype int
  value int
}
func f() int {
  rrs := make([]RR)
  var rr RR
  rr.rtype = 1
  rr.value = 100
  rrs = append(rrs, rr)
  rr.rtype = 28
  rr.value = 200
  rrs = append(rrs, rr)
  s := 0
  for i := 0; i < len(rrs); i = i + 1 {
    if rrs[i].rtype == 28 {
      s = s + rrs[i].value
    }
  }
  return s
}
)", "f", {}),
            200);
}

// Byte-level domain-name comparison from paper Fig. 4, exercised concretely.
// Names are byte lists; labels separated by '.' (46); comparison walks from
// the last byte.
TEST_F(PipelineTest, CompareRawStyleLoop) {
  const std::string source = R"(
const NOMATCH = 0
const EXACTMATCH = 1
const PARTIALMATCH = 2
func compareRaw(n1 []int, n2 []int) int {
  i := len(n1) - 1
  j := len(n2) - 1
  matched := 0
  for i >= 0 && j >= 0 {
    if n1[i] != n2[j] {
      if matched > 0 {
        return PARTIALMATCH
      }
      return NOMATCH
    }
    if n1[i] == 46 {
      matched = matched + 1
    }
    i = i - 1
    j = j - 1
  }
  if i < 0 && j < 0 {
    return EXACTMATCH
  }
  if j < 0 && n1[i] == 46 {
    return PARTIALMATCH
  }
  if i < 0 && n2[j] == 46 {
    return PARTIALMATCH
  }
  if matched > 0 {
    return PARTIALMATCH
  }
  return NOMATCH
}
func harness(which int) int {
  a := make([]int)
  a = append(a, 119)  // w
  a = append(a, 119)
  a = append(a, 119)
  a = append(a, 46)   // .
  a = append(a, 99)   // c
  b := make([]int)
  b = append(b, 99)
  if which == 0 {
    return compareRaw(a, a)
  }
  if which == 1 {
    return compareRaw(a, b)
  }
  return compareRaw(b, b)
}
)";
  EXPECT_EQ(RunInt(source, "harness", {Value::Int(0)}), 1);  // EXACTMATCH
  EXPECT_EQ(RunInt(source, "harness", {Value::Int(1)}), 2);  // suffix "c" after a dot
}

}  // namespace
}  // namespace dnsv

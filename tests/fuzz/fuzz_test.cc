// Tests for the wire fuzzing harness itself (src/fuzz, docs/WIRE.md): the
// generator must be deterministic and canonical, the mutator must cover all
// five mutation families without breaking the parsers, the round-trip pass
// must hold on arbitrary seeds, and the differential pass must be silent on
// the clean engine versions while rediscovering the Table-2 bugs on the
// buggy ones — with every reported divergence replayable from its packet.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/dns/wire.h"
#include "src/engine/engine.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/packet_gen.h"

namespace dnsv {
namespace {

constexpr size_t kNoTruncation = size_t{1} << 20;

TEST(PacketGeneratorTest, DeterministicAcrossInstances) {
  PacketGenerator a(42, KitchenSinkZone());
  PacketGenerator b(42, KitchenSinkZone());
  for (int i = 0; i < 100; ++i) {
    GeneratedPacket qa = a.NextQueryPacket();
    GeneratedPacket qb = b.NextQueryPacket();
    ASSERT_EQ(qa.bytes, qb.bytes) << "query stream diverged at iteration " << i;
    GeneratedPacket ra = a.NextResponsePacket();
    GeneratedPacket rb = b.NextResponsePacket();
    ASSERT_EQ(ra.bytes, rb.bytes) << "response stream diverged at iteration " << i;
    ASSERT_EQ(a.Mutate(ra), b.Mutate(rb)) << "mutation stream diverged at iteration " << i;
  }
}

TEST(PacketGeneratorTest, SeedChangesTheStream) {
  PacketGenerator a(1, KitchenSinkZone());
  PacketGenerator b(2, KitchenSinkZone());
  bool any_difference = false;
  for (int i = 0; i < 20 && !any_difference; ++i) {
    any_difference = a.NextQueryPacket().bytes != b.NextQueryPacket().bytes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(PacketGeneratorTest, GeneratedPacketsAreCanonicalFixpoints) {
  PacketGenerator gen(7, KitchenSinkZone());
  for (int i = 0; i < 50; ++i) {
    GeneratedPacket query_packet = gen.NextQueryPacket();
    Result<WireQuery> query = ParseWireQuery(query_packet.bytes);
    ASSERT_TRUE(query.ok()) << query.error();
    EXPECT_EQ(EncodeWireQuery(query.value()), query_packet.bytes);

    GeneratedPacket response_packet = gen.NextResponsePacket();
    WireQuery echoed;
    Result<ResponseView> view = ParseWireResponse(response_packet.bytes, &echoed);
    ASSERT_TRUE(view.ok()) << view.error();
    Result<std::vector<uint8_t>> reencoded =
        EncodeWireResponse(echoed, view.value(), kNoTruncation);
    ASSERT_TRUE(reencoded.ok()) << reencoded.error();
    EXPECT_EQ(reencoded.value(), response_packet.bytes);
  }
}

TEST(PacketGeneratorTest, IndexedOffsetsMatchTheParsedStructure) {
  PacketGenerator gen(11, KitchenSinkZone());
  for (int i = 0; i < 50; ++i) {
    GeneratedPacket packet = gen.NextResponsePacket();
    WireQuery echoed;
    Result<ResponseView> view = ParseWireResponse(packet.bytes, &echoed);
    ASSERT_TRUE(view.ok()) << view.error();
    // The parser diverts the OPT into echoed.edns rather than a section, but
    // on the wire it is a real record with an owner name and an RDLENGTH —
    // the index must expose it so the mutator can target it.
    size_t records = view.value().answer.size() + view.value().authority.size() +
                     view.value().additional.size() + (echoed.edns.present ? 1 : 0);
    // One RDLENGTH per record; one name per record owner plus the question.
    EXPECT_EQ(packet.rdlength_offsets.size(), records);
    EXPECT_EQ(packet.name_offsets.size(), records + 1);
    for (size_t offset : packet.rdlength_offsets) {
      EXPECT_LT(offset + 1, packet.bytes.size());
    }
  }
}

TEST(PacketGeneratorTest, MutatorCoversEveryFamilyAndParsersNeverCrash) {
  PacketGenerator gen(0xFEED, KitchenSinkZone());
  std::set<MutationKind> seen;
  for (int i = 0; i < 400; ++i) {
    GeneratedPacket packet = i % 2 == 0 ? gen.NextResponsePacket() : gen.NextQueryPacket();
    MutationKind kind;
    std::vector<uint8_t> mutant = gen.Mutate(packet, &kind);
    seen.insert(kind);
    // Termination without a crash is the assertion; outcomes are free.
    (void)ParseWireQuery(mutant);
    WireQuery echoed;
    (void)ParseWireResponse(mutant, &echoed);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumMutationKinds));
}

TEST(HexFormatTest, RoundTripsAndAcceptsCorpusComments) {
  std::vector<uint8_t> packet = {0x00, 0x12, 0xAB, 0xFF};
  Result<std::vector<uint8_t>> round_trip = HexToWirePacket(WirePacketToHex(packet));
  ASSERT_TRUE(round_trip.ok()) << round_trip.error();
  EXPECT_EQ(round_trip.value(), packet);

  Result<std::vector<uint8_t>> commented =
      HexToWirePacket("12 34  # header\nab ; trailing comment\ncd\n");
  ASSERT_TRUE(commented.ok()) << commented.error();
  EXPECT_EQ(commented.value(), (std::vector<uint8_t>{0x12, 0x34, 0xAB, 0xCD}));

  EXPECT_FALSE(HexToWirePacket("1").ok());       // unpaired digit
  EXPECT_FALSE(HexToWirePacket("1 2").ok());     // split byte
  EXPECT_FALSE(HexToWirePacket("zz").ok());      // not hex
}

TEST(RoundTripFuzzTest, InvariantsHoldOnArbitrarySeeds) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{0xBEEF}, uint64_t{0xD15EA5E}}) {
    RoundTripOptions options;
    options.seed = seed;
    options.iterations = 200;
    RoundTripStats stats = RunRoundTripFuzz(options, KitchenSinkZone());
    EXPECT_TRUE(stats.ok()) << "seed " << seed << ":\n" << stats.Summary();
    EXPECT_EQ(stats.packets,
              options.iterations * 2 * (1 + options.mutants_per_packet));
    EXPECT_EQ(stats.queries, options.iterations);
    EXPECT_EQ(stats.responses, options.iterations);
    // Mutants must land on both sides of the parser's judgment, and every
    // mutation family must have been exercised.
    EXPECT_GT(stats.mutants_rejected, 0);
    EXPECT_GT(stats.mutants_parsed, 0);
    for (int kind = 0; kind < kNumMutationKinds; ++kind) {
      EXPECT_GT(stats.mutation_counts[kind], 0)
          << "family never chosen: " << MutationKindName(static_cast<MutationKind>(kind));
    }
  }
}

// Mirrors the harness's divergence predicate for independent re-verification.
bool StillDiverges(AuthoritativeServer* server, const DnsName& qname, RrType qtype) {
  QueryResult engine = server->Query(qname, qtype);
  QueryResult spec = server->QuerySpec(qname, qtype);
  if (engine.panicked != spec.panicked) {
    return true;
  }
  if (engine.panicked) {
    return engine.panic_message != spec.panic_message;
  }
  return !(engine.response == spec.response);
}

TEST(DifferentialFuzzTest, CleanVersionsNeverDivergeFromTheSpec) {
  DifferentialOptions options;
  options.random_queries = 80;
  Result<DifferentialStats> stats = RunDifferentialFuzz(
      {EngineVersion::kGolden, EngineVersion::kV4, EngineVersion::kV5}, BugHuntZone(), options);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_GT(stats.value().queries_per_version, options.random_queries);
  EXPECT_EQ(stats.value().DivergenceCount(EngineVersion::kGolden), 0);
  EXPECT_EQ(stats.value().DivergenceCount(EngineVersion::kV4), 0);
  EXPECT_EQ(stats.value().DivergenceCount(EngineVersion::kV5), 0);
  EXPECT_TRUE(stats.value().divergences.empty());
}

TEST(DifferentialFuzzTest, RediscoversKnownBugsWithReplayablePackets) {
  DifferentialOptions options;
  options.random_queries = 120;
  std::vector<EngineVersion> versions = {EngineVersion::kV1, EngineVersion::kDev};
  Result<DifferentialStats> stats = RunDifferentialFuzz(versions, BugHuntZone(), options);
  ASSERT_TRUE(stats.ok()) << stats.error();
  for (EngineVersion version : versions) {
    EXPECT_GT(stats.value().DivergenceCount(version), 0)
        << "harness is blind to the known bugs of " << EngineVersionName(version);
  }

  std::map<EngineVersion, std::unique_ptr<AuthoritativeServer>> servers;
  for (const WireDivergence& divergence : stats.value().divergences) {
    SCOPED_TRACE(divergence.ToString());
    // The reported packet is a parseable query for the minimized name.
    Result<WireQuery> parsed = ParseWireQuery(divergence.query_packet);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().qname.ToString(), divergence.qname);
    EXPECT_EQ(parsed.value().qtype, divergence.qtype);
    // Minimization must preserve the divergence: replay it concretely.
    auto it = servers.find(divergence.version);
    if (it == servers.end()) {
      Result<std::unique_ptr<AuthoritativeServer>> server =
          AuthoritativeServer::Create(divergence.version, BugHuntZone());
      ASSERT_TRUE(server.ok()) << server.error();
      it = servers.emplace(divergence.version, std::move(server).value()).first;
    }
    EXPECT_TRUE(StillDiverges(it->second.get(), parsed.value().qname, parsed.value().qtype));
  }
}

}  // namespace
}  // namespace dnsv

// Corruption safety (docs/INCREMENTAL.md): a damaged store must read as a
// miss and send the pipeline down the cold path — never replay damaged data,
// never abort, and produce a report byte-identical to the pristine run.
//
// Each test cold-verifies into a fresh store, damages every artifact file
// with one defect class (truncation, bit flip, wrong container version),
// then re-runs warm and checks the fallback.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/dnsv/incremental.h"
#include "src/dnsv/pipeline.h"
#include "src/smt/query_cache.h"

namespace dnsv {
namespace {

namespace fs = std::filesystem;

class StoreTamperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The test owns its store and solver configuration.
    ::unsetenv("DNSV_STORE_DIR");
    ::unsetenv("DNSV_STORE_FORCE");
    ::unsetenv("DNSV_SOLVER_FORCE");
    root_ = fs::temp_directory_path() /
            ("dnsv-tamper-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  VerificationReport Run(EngineVersion version, ArtifactStore* store) {
    // Fresh context + cleared global cache: the store is the only channel
    // between the cold and warm runs.
    VerifyContext context;
    QueryCache::Global()->Clear();
    VerifyOptions options;
    options.use_summaries = true;
    options.prune = true;
    options.store = store;
    options.store_mode = StoreMode::kIncremental;
    return RunVerifyPipeline(&context, version, Figure11Zone(), options);
  }

  // Applies `damage` to every artifact file under the store root.
  int DamageAll(const std::function<void(const fs::path&)>& damage) {
    int damaged = 0;
    for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root_)) {
      if (entry.is_regular_file() && entry.path().extension() == ".art") {
        damage(entry.path());
        ++damaged;
      }
    }
    return damaged;
  }

  void CheckColdFallback(EngineVersion version,
                         const std::function<void(const fs::path&)>& damage) {
    ArtifactStore store(root_.string());
    VerificationReport cold = Run(version, &store);
    ASSERT_FALSE(cold.aborted) << cold.abort_reason;
    ASSERT_FALSE(cold.incremental.replayed);
    const std::string cold_text = NormalizedReportText(cold);
    ASSERT_GT(DamageAll(damage), 0) << "cold run wrote no artifacts to damage";

    VerificationReport warm = Run(version, &store);
    EXPECT_FALSE(warm.aborted) << warm.abort_reason;
    EXPECT_FALSE(warm.incremental.replayed)
        << "a damaged report artifact must never replay";
    EXPECT_EQ(warm.incremental.functions_reused, 0)
        << "damaged markers must not count as reuse";
    EXPECT_EQ(NormalizedReportText(warm), cold_text)
        << "cold fallback must reproduce the pristine report";
    EXPECT_GE(store.counters().corrupt_rejected, 1);
  }

  fs::path root_;
};

void Truncate(const fs::path& path) {
  fs::resize_file(path, fs::file_size(path) / 2);
}

void BitFlip(const fs::path& path) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, 2);
  // Flip a payload byte (the file ends "<payload>\n"): the checksum check
  // must catch it even though the framing is intact.
  file.seekg(size - 2);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(size - 2);
  file.write(&byte, 1);
}

void WrongContainerVersion(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const std::string current = "dnsvstore 1 ";
  ASSERT_EQ(content.compare(0, current.size(), current), 0)
      << "container header changed; update this test";
  content.replace(0, current.size(), "dnsvstore 9 ");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST_F(StoreTamperTest, TruncatedArtifactsFallBackCold) {
  CheckColdFallback(EngineVersion::kGolden, Truncate);
}

TEST_F(StoreTamperTest, BitFlippedArtifactsFallBackCold) {
  CheckColdFallback(EngineVersion::kGolden, BitFlip);
}

TEST_F(StoreTamperTest, WrongContainerVersionFallsBackCold) {
  CheckColdFallback(EngineVersion::kGolden, WrongContainerVersion);
}

// The same guarantee for a buggy version, where the report carries issues,
// counterexamples, and wire packets: the richer payload must also survive
// the damage-then-recompute path byte-identically.
TEST_F(StoreTamperTest, BuggyVersionReportSurvivesTamper) {
  CheckColdFallback(EngineVersion::kV1, BitFlip);
}

}  // namespace
}  // namespace dnsv

// ArtifactStore container semantics: round-trips, miss/corruption policy,
// LRU GC, counters, and the DNSV_STORE_DIR binding.
#include "src/store/store.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

namespace dnsv {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("dnsv-store-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string PathOf(ArtifactStore* store, const std::string& key) {
    for (const ArtifactStore::Entry& entry : store->List()) {
      if (entry.key == key) return entry.path;
    }
    return "";
  }

  fs::path root_;
};

TEST_F(StoreTest, PutGetRoundtrip) {
  ArtifactStore store(root_.string());
  const std::string payload(1000, '\x7f');
  ASSERT_TRUE(store.Put("report", "report|v1|abc", payload));
  std::optional<std::string> got = store.Get("report", "report|v1|abc");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(store.Contains("report", "report|v1|abc"));
}

TEST_F(StoreTest, AbsentKeyIsAMiss) {
  ArtifactStore store(root_.string());
  EXPECT_FALSE(store.Get("report", "no-such-key").has_value());
  EXPECT_FALSE(store.Contains("report", "no-such-key"));
  ArtifactStore::Counters counters = store.counters();
  EXPECT_EQ(counters.hits, 0);
  EXPECT_EQ(counters.misses, 2);
  EXPECT_EQ(counters.corrupt_rejected, 0);
}

TEST_F(StoreTest, OverwriteReplacesPayload) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "k", "first"));
  ASSERT_TRUE(store.Put("report", "k", "second"));
  std::optional<std::string> got = store.Get("report", "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second");
  EXPECT_EQ(store.GetStats().total_count, 1);
}

TEST_F(StoreTest, EmptyPayloadRoundtrips) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("fnmark", "fnmark|v1|x", ""));
  std::optional<std::string> got = store.Get("fnmark", "fnmark|v1|x");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "");
}

TEST_F(StoreTest, BinaryPayloadRoundtrips) {
  ArtifactStore store(root_.string());
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  payload += '\n';
  payload += payload;
  ASSERT_TRUE(store.Put("qcache", "qcache|v1|bin", payload));
  std::optional<std::string> got = store.Get("qcache", "qcache|v1|bin");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

// A file whose recorded key differs from the requested key is a corrupt
// artifact, not a hit: copy key A's file over key B's path and B must miss.
TEST_F(StoreTest, StoredKeyMismatchIsCorrupt) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "key-a", "payload-a"));
  ASSERT_TRUE(store.Put("report", "key-b", "payload-b"));
  const std::string path_a = PathOf(&store, "key-a");
  const std::string path_b = PathOf(&store, "key-b");
  ASSERT_FALSE(path_a.empty());
  ASSERT_FALSE(path_b.empty());
  fs::copy_file(path_a, path_b, fs::copy_options::overwrite_existing);

  EXPECT_FALSE(store.Get("report", "key-b").has_value());
  EXPECT_GE(store.counters().corrupt_rejected, 1);
  // Key A itself is untouched.
  EXPECT_TRUE(store.Get("report", "key-a").has_value());
}

TEST_F(StoreTest, TruncatedFileIsCorruptAndListedAsSuch) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "k", std::string(500, 'p')));
  const std::string path = PathOf(&store, "k");
  ASSERT_FALSE(path.empty());
  fs::resize_file(path, fs::file_size(path) / 2);

  EXPECT_FALSE(store.Get("report", "k").has_value());
  EXPECT_GE(store.counters().corrupt_rejected, 1);
  ArtifactStore::StoreStats stats = store.GetStats();
  EXPECT_EQ(stats.corrupt_count, 1);
  bool listed_corrupt = false;
  for (const ArtifactStore::Entry& entry : store.List()) {
    listed_corrupt |= entry.corrupt;
  }
  EXPECT_TRUE(listed_corrupt);
}

TEST_F(StoreTest, GcEvictsLeastRecentlyUsedAndCorruptFirst) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "old", std::string(100, 'a')));
  ASSERT_TRUE(store.Put("report", "hot", std::string(100, 'b')));
  ASSERT_TRUE(store.Put("report", "damaged", std::string(100, 'c')));
  const std::string damaged_path = PathOf(&store, "damaged");
  ASSERT_FALSE(damaged_path.empty());
  fs::resize_file(damaged_path, 10);

  // Refresh "hot"'s LRU clock, then shrink: the corrupt file must go first
  // and "hot" must survive "old".
  ASSERT_TRUE(store.Get("report", "hot").has_value());
  store.GC(200);
  EXPECT_TRUE(store.Contains("report", "hot"));
  EXPECT_FALSE(fs::exists(damaged_path));
  EXPECT_LE(store.GetStats().total_bytes, 200);
}

TEST_F(StoreTest, ClearRemovesEverything) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "a", "x"));
  ASSERT_TRUE(store.Put("qcache", "b", "y"));
  EXPECT_EQ(store.Clear(), 2);
  EXPECT_EQ(store.GetStats().total_count, 0);
  EXPECT_FALSE(store.Contains("report", "a"));
}

TEST_F(StoreTest, StatsGroupByKind) {
  ArtifactStore store(root_.string());
  ASSERT_TRUE(store.Put("report", "a", std::string(10, 'x')));
  ASSERT_TRUE(store.Put("report", "b", std::string(20, 'x')));
  ASSERT_TRUE(store.Put("qcache", "c", std::string(30, 'x')));
  ArtifactStore::StoreStats stats = store.GetStats();
  EXPECT_EQ(stats.total_count, 3);
  EXPECT_EQ(stats.kinds.at("report").count, 2);
  EXPECT_EQ(stats.kinds.at("qcache").count, 1);
  EXPECT_GT(stats.kinds.at("report").bytes, stats.kinds.at("qcache").bytes - 30);
}

TEST_F(StoreTest, FromEnvBindsDnsvStoreDir) {
  ::setenv("DNSV_STORE_DIR", root_.string().c_str(), 1);
  ArtifactStore* store = ArtifactStore::FromEnv();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->root(), root_.string());
  ::unsetenv("DNSV_STORE_DIR");
  EXPECT_EQ(ArtifactStore::FromEnv(), nullptr);
}

}  // namespace
}  // namespace dnsv

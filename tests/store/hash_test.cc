// Structural-hash tests: the body/cone hashes of src/store/hash.h are the
// store's invalidation logic, so their equality/inequality behavior is
// load-bearing — equal when nothing in the cone changed, different when
// anything did.
#include "src/store/hash.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dnsv/layers.h"
#include "src/engine/engine.h"
#include "src/ir/printer.h"

namespace dnsv {
namespace {

ModuleManifest ManifestOf(EngineVersion version) {
  std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(version);
  return BuildModuleManifest(engine->module());
}

TEST(HashTest, DeterministicAcrossCompiles) {
  ModuleManifest first = ManifestOf(EngineVersion::kGolden);
  ModuleManifest second = ManifestOf(EngineVersion::kGolden);
  EXPECT_EQ(first.module_fingerprint, second.module_fingerprint);
  EXPECT_EQ(first.body_hash, second.body_hash);
  EXPECT_EQ(first.cone_hash, second.cone_hash);
}

TEST(HashTest, ManifestMatchesModuleFingerprint) {
  std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(EngineVersion::kGolden);
  ModuleManifest manifest = BuildModuleManifest(engine->module());
  EXPECT_EQ(manifest.module_fingerprint, ModuleFingerprint(engine->module()));
  EXPECT_FALSE(manifest.body_hash.empty());
  EXPECT_EQ(manifest.body_hash.size(), manifest.cone_hash.size());
}

// Versions share their library layers: most functions must carry identical
// body hashes across versions, while the modules as a whole differ.
TEST(HashTest, BodyHashesSharedAcrossVersions) {
  ModuleManifest golden = ManifestOf(EngineVersion::kGolden);
  ModuleManifest dev = ManifestOf(EngineVersion::kDev);
  EXPECT_NE(golden.module_fingerprint, dev.module_fingerprint);

  int shared = 0, differing = 0;
  for (const auto& [name, hash] : golden.body_hash) {
    auto it = dev.body_hash.find(name);
    if (it == dev.body_hash.end()) continue;
    (it->second == hash ? shared : differing)++;
  }
  EXPECT_GT(shared, 10) << "library functions should hash identically";
  EXPECT_GT(differing, 0) << "dev differs from golden somewhere";
}

// The cone hash must change for every transitive caller of a changed
// function and for nothing else: exactly the Fig.-5 layer reuse condition.
TEST(HashTest, LayerConesLocalizeTheDiff) {
  ModuleManifest v3 = ManifestOf(EngineVersion::kV3);
  ModuleManifest dev = ManifestOf(EngineVersion::kDev);

  int reused = 0;
  std::vector<std::string> dirty;
  for (const LayerInfo& layer : EngineLayers(EngineVersion::kDev)) {
    uint64_t dev_hash = CombineConeHashes(dev, layer.functions);
    uint64_t v3_hash = CombineConeHashes(v3, layer.functions);
    if (dev_hash == v3_hash) {
      ++reused;
    } else {
      dirty.push_back(layer.name);
    }
  }
  EXPECT_GE(reused, 7) << "library layers must hash identically across v3/dev";
  ASSERT_FALSE(dirty.empty()) << "the changed resolve layer must be dirty";
  for (const std::string& name : dirty) {
    EXPECT_TRUE(name == "Resolve" || name == "Find" || name == "Wildcard")
        << "unexpected dirty layer " << name;
  }
}

TEST(HashTest, CombineIsSensitiveToMembership) {
  ModuleManifest manifest = ManifestOf(EngineVersion::kGolden);
  ASSERT_GE(manifest.cone_hash.size(), 2u);
  const std::string a = manifest.cone_hash.begin()->first;
  const std::string b = std::next(manifest.cone_hash.begin())->first;
  EXPECT_NE(CombineConeHashes(manifest, {a}), CombineConeHashes(manifest, {a, b}));
  // An absent function is not the same as no function: "layer lost a member"
  // must change the hash rather than silently matching.
  EXPECT_NE(CombineConeHashes(manifest, {a}),
            CombineConeHashes(manifest, {a, "no_such_function"}));
  EXPECT_NE(CombineConeHashes(manifest, {"no_such_function"}),
            CombineConeHashes(manifest, {}));
}

}  // namespace
}  // namespace dnsv

// Behavioral tests of the golden engine over the concrete interpreter:
// every RFC-1034 resolution scenario the paper's engine supports.
#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"

namespace dnsv {
namespace {

class GoldenEngineTest : public ::testing::Test {
 protected:
  void Load(const ZoneConfig& zone) {
    auto server = AuthoritativeServer::Create(EngineVersion::kGolden, zone);
    ASSERT_TRUE(server.ok()) << server.error();
    server_ = std::move(server).value();
  }

  ResponseView Query(const std::string& qname, RrType qtype) {
    QueryResult result = server_->Query(DnsName::Parse(qname).value(), qtype);
    EXPECT_FALSE(result.panicked) << result.panic_message;
    return result.response;
  }

  std::unique_ptr<AuthoritativeServer> server_;
};

TEST_F(GoldenEngineTest, ExactMatchA) {
  Load(Figure11Zone());
  ResponseView resp = Query("www.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.aa);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].name, "www.example.com");
  EXPECT_EQ(resp.answer[0].ToString(), "www.example.com A 192.0.2.10");
  EXPECT_TRUE(resp.authority.empty());
  EXPECT_TRUE(resp.additional.empty());
}

TEST_F(GoldenEngineTest, MultipleRecordsInAnswer) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("www.example.com", RrType::kA);
  ASSERT_EQ(resp.answer.size(), 2u);
  EXPECT_EQ(resp.answer[0].rdata_value & 0xff, 10);
  EXPECT_EQ(resp.answer[1].rdata_value & 0xff, 11);
}

TEST_F(GoldenEngineTest, NxDomain) {
  Load(Figure11Zone());
  ResponseView resp = Query("missing.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.aa);
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

TEST_F(GoldenEngineTest, NoDataForMissingType) {
  Load(Figure11Zone());
  ResponseView resp = Query("www.example.com", RrType::kTxt);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.aa);
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

TEST_F(GoldenEngineTest, EmptyNonTerminalIsNoDataNotNxDomain) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("ent.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);  // the name exists structurally
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

TEST_F(GoldenEngineTest, RefusedOutsideZone) {
  Load(Figure11Zone());
  ResponseView resp = Query("www.other.org", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kRefused);
  EXPECT_FALSE(resp.aa);
  EXPECT_TRUE(resp.answer.empty());
}

TEST_F(GoldenEngineTest, ApexSoaAndNsQueries) {
  Load(KitchenSinkZone());
  ResponseView soa = Query("example.com", RrType::kSoa);
  ASSERT_EQ(soa.answer.size(), 1u);
  EXPECT_EQ(soa.answer[0].type, RrType::kSoa);
  ResponseView ns = Query("example.com", RrType::kNs);
  ASSERT_EQ(ns.answer.size(), 2u);
  // Apex NS answers get glue for in-zone nameservers.
  ASSERT_EQ(ns.additional.size(), 3u);  // ns1 A, ns1 AAAA, ns2 A
  EXPECT_EQ(ns.additional[0].ToString(), "ns1.example.com A 192.0.2.1");
  EXPECT_EQ(ns.additional[1].type, RrType::kAaaa);
  EXPECT_EQ(ns.additional[2].ToString(), "ns2.example.com A 192.0.2.2");
}

TEST_F(GoldenEngineTest, WildcardSynthesis) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("host.dyn.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.aa);
  ASSERT_EQ(resp.answer.size(), 1u);
  // Synthesized: owner rewritten to the query name.
  EXPECT_EQ(resp.answer[0].name, "host.dyn.example.com");
  EXPECT_EQ(resp.answer[0].rdata_value & 0xff, 99);
}

TEST_F(GoldenEngineTest, WildcardMatchesMultipleLabels) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("a.b.dyn.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].name, "a.b.dyn.example.com");
}

TEST_F(GoldenEngineTest, WildcardDoesNotOverrideExistingName) {
  Load(KitchenSinkZone());
  // dyn.example.com itself exists (as an ENT above the wildcard): NODATA.
  ResponseView resp = Query("dyn.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answer.empty());
}

TEST_F(GoldenEngineTest, WildcardMxGetsGlue) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("x.dyn.example.com", RrType::kMx);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].name, "x.dyn.example.com");
  EXPECT_EQ(resp.answer[0].rdata_name, "mail.example.com");
  ASSERT_EQ(resp.additional.size(), 1u);
  EXPECT_EQ(resp.additional[0].ToString(), "mail.example.com A 192.0.2.25");
}

TEST_F(GoldenEngineTest, DirectWildcardQuery) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("*.dyn.example.com", RrType::kA);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].name, "*.dyn.example.com");
}

TEST_F(GoldenEngineTest, ReferralWithGlue) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("deep.sub.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_FALSE(resp.aa);  // not authoritative below the cut
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 2u);
  EXPECT_EQ(resp.authority[0].type, RrType::kNs);
  ASSERT_EQ(resp.additional.size(), 2u);
  EXPECT_EQ(resp.additional[0].ToString(), "ns1.sub.example.com A 192.0.2.51");
  EXPECT_EQ(resp.additional[1].ToString(), "ns2.sub.example.com A 192.0.2.52");
}

TEST_F(GoldenEngineTest, QueryAtTheCutIsAlsoReferral) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("sub.example.com", RrType::kA);
  EXPECT_FALSE(resp.aa);
  EXPECT_TRUE(resp.answer.empty());
  EXPECT_EQ(resp.authority.size(), 2u);
}

TEST_F(GoldenEngineTest, CnameChainFollowed) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("chain.example.com", RrType::kA);
  ASSERT_EQ(resp.answer.size(), 4u);  // chain CNAME, alias CNAME, 2x www A
  EXPECT_EQ(resp.answer[0].type, RrType::kCname);
  EXPECT_EQ(resp.answer[0].rdata_name, "alias.example.com");
  EXPECT_EQ(resp.answer[1].type, RrType::kCname);
  EXPECT_EQ(resp.answer[1].rdata_name, "www.example.com");
  EXPECT_EQ(resp.answer[2].type, RrType::kA);
  EXPECT_EQ(resp.answer[3].type, RrType::kA);
}

TEST_F(GoldenEngineTest, CnameQtypeReturnsCnameItself) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("alias.example.com", RrType::kCname);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].type, RrType::kCname);
}

TEST_F(GoldenEngineTest, MxAnswerWithAdditional) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("example.com", RrType::kMx);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].type, RrType::kMx);
  ASSERT_EQ(resp.additional.size(), 1u);
  EXPECT_EQ(resp.additional[0].name, "mail.example.com");
}

TEST_F(GoldenEngineTest, AnyQueryReturnsAllTypes) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("www.example.com", RrType::kAny);
  ASSERT_EQ(resp.answer.size(), 3u);  // A, A, TXT in canonical order
  EXPECT_EQ(resp.answer[0].type, RrType::kA);
  EXPECT_EQ(resp.answer[1].type, RrType::kA);
  EXPECT_EQ(resp.answer[2].type, RrType::kTxt);
}

TEST_F(GoldenEngineTest, AnyAtEntIsNoData) {
  Load(KitchenSinkZone());
  ResponseView resp = Query("ent.example.com", RrType::kAny);
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

TEST_F(GoldenEngineTest, NamesAreCaseInsensitive) {
  Load(Figure11Zone());
  ResponseView resp = Query("WWW.Example.COM", RrType::kA);
  ASSERT_EQ(resp.answer.size(), 1u);
}

TEST_F(GoldenEngineTest, QueryBelowExistingLeafIsNxDomain) {
  Load(Figure11Zone());
  ResponseView resp = Query("deeper.www.example.com", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNxDomain);
}


TEST_F(GoldenEngineTest, V4AnswersMetaQueriesNotImp) {
  // v4.0's feature iteration: AXFR/IXFR/MAILB/MAILA get NOTIMP; everything
  // else behaves like golden, and the adapted spec agrees.
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kV4, KitchenSinkZone()).value());
  DnsName qname = DnsName::Parse("www.example.com").value();
  for (int64_t meta = 251; meta <= 254; ++meta) {
    QueryResult impl = server->Query(qname, static_cast<RrType>(meta));
    QueryResult spec = server->QuerySpec(qname, static_cast<RrType>(meta));
    ASSERT_FALSE(impl.panicked);
    EXPECT_EQ(impl.response.rcode, Rcode::kNotImp);
    EXPECT_TRUE(impl.response.answer.empty());
    EXPECT_EQ(impl.response, spec.response);
  }
  // Ordinary and ANY queries still resolve.
  EXPECT_EQ(server->Query(qname, RrType::kA).response.rcode, Rcode::kNoError);
  EXPECT_EQ(server->Query(qname, RrType::kAny).response.answer.size(), 3u);
}

TEST_F(GoldenEngineTest, V5AnswersQtypeOptFormErr) {
  // v5.0's feature iteration: a question asking for TYPE=OPT is a protocol
  // error — OPT is a pseudo-RR that may only appear in the additional
  // section (RFC 6891 §6.1.1) — so the engine answers FORMERR and the
  // adapted spec agrees. v4.0's NOTIMP meta-type behaviour is retained.
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kV5, KitchenSinkZone()).value());
  DnsName qname = DnsName::Parse("www.example.com").value();
  QueryResult impl = server->Query(qname, static_cast<RrType>(41));
  QueryResult spec = server->QuerySpec(qname, static_cast<RrType>(41));
  ASSERT_FALSE(impl.panicked);
  EXPECT_EQ(impl.response.rcode, Rcode::kFormErr);
  EXPECT_TRUE(impl.response.answer.empty());
  EXPECT_EQ(impl.response, spec.response);
  for (int64_t meta = 251; meta <= 254; ++meta) {
    EXPECT_EQ(server->Query(qname, static_cast<RrType>(meta)).response.rcode, Rcode::kNotImp);
  }
  // Earlier versions answer qtype OPT like any unknown type: clean NODATA.
  auto v4 =
      std::move(AuthoritativeServer::Create(EngineVersion::kV4, KitchenSinkZone()).value());
  EXPECT_EQ(v4->Query(qname, static_cast<RrType>(41)).response.rcode, Rcode::kNoError);
  // Ordinary and ANY queries still resolve.
  EXPECT_EQ(server->Query(qname, RrType::kA).response.rcode, Rcode::kNoError);
  EXPECT_EQ(server->Query(qname, RrType::kAny).response.answer.size(), 3u);
}

TEST_F(GoldenEngineTest, AllVersionsCompile) {
  for (EngineVersion version : AllEngineVersions()) {
    std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(version);
    EXPECT_NE(engine->module().GetFunction("resolve"), nullptr)
        << EngineVersionName(version);
  }
}

}  // namespace
}  // namespace dnsv

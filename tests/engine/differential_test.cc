// Differential testing: the golden engine must agree with the executable
// specification on every (zone, qname, qtype) probe — example zones plus a
// parameterized sweep over randomly generated zones (paper §6.5's workload,
// run concretely as the oracle for the verifier).
#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

// Runs the full probe matrix for one zone; returns the number of probes.
int ExpectEngineMatchesSpec(EngineVersion version, const ZoneConfig& zone, uint64_t seed) {
  auto server_result = AuthoritativeServer::Create(version, zone);
  EXPECT_TRUE(server_result.ok()) << server_result.error();
  auto server = std::move(server_result).value();
  int probes = 0;
  for (const DnsName& qname : InterestingQueryNames(server->zone(), seed)) {
    for (RrType qtype : AllQueryTypes()) {
      QueryResult impl = server->Query(qname, qtype);
      QueryResult spec = server->QuerySpec(qname, qtype);
      EXPECT_FALSE(spec.panicked)
          << "spec panicked on " << qname.ToString() << ": " << spec.panic_message;
      EXPECT_FALSE(impl.panicked)
          << "engine panicked on " << qname.ToString() << ": " << impl.panic_message;
      if (!impl.panicked && !spec.panicked) {
        EXPECT_EQ(impl.response, spec.response)
            << "divergence on " << qname.ToString() << " " << RrTypeName(qtype)
            << "\nzone:\n" << server->zone().ToText() << "impl:\n"
            << impl.response.ToString() << "spec:\n" << spec.response.ToString();
      }
      ++probes;
    }
  }
  return probes;
}

TEST(DifferentialGolden, ExampleZones) {
  EXPECT_GT(ExpectEngineMatchesSpec(EngineVersion::kGolden, Figure11Zone(), 1), 100);
  EXPECT_GT(ExpectEngineMatchesSpec(EngineVersion::kGolden, KitchenSinkZone(), 2), 200);
  EXPECT_GT(ExpectEngineMatchesSpec(EngineVersion::kGolden, QuickstartZone(), 3), 50);
  EXPECT_GT(ExpectEngineMatchesSpec(EngineVersion::kGolden, BugHuntZone(), 4), 100);
}

// Property sweep over random zones (paper: "scripts to randomly generate
// thousands of zone configurations" — a slice of that runs in CI).
class RandomZoneDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomZoneDifferential, GoldenMatchesSpec) {
  ZoneConfig zone = GenerateZone(GetParam());
  ExpectEngineMatchesSpec(EngineVersion::kGolden, zone, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomZoneDifferential, ::testing::Range(uint64_t{0},
                                                                          uint64_t{25}));

// Buggy versions must diverge from the spec somewhere on the bug-hunt zone —
// the differential oracle is sensitive enough to catch every seeded bug.
class BuggyVersionDiverges : public ::testing::TestWithParam<EngineVersion> {};

TEST_P(BuggyVersionDiverges, OnBugHuntZone) {
  auto server = std::move(AuthoritativeServer::Create(GetParam(), BugHuntZone()).value());
  int divergences = 0;
  for (const DnsName& qname : InterestingQueryNames(server->zone(), 7)) {
    for (RrType qtype : AllQueryTypes()) {
      QueryResult impl = server->Query(qname, qtype);
      QueryResult spec = server->QuerySpec(qname, qtype);
      if (impl.panicked || spec.panicked || impl.response != spec.response) {
        ++divergences;
      }
    }
  }
  EXPECT_GT(divergences, 0) << EngineVersionName(GetParam())
                            << " should diverge from its spec on the bug-hunt zone";
}

INSTANTIATE_TEST_SUITE_P(Versions, BuggyVersionDiverges,
                         ::testing::Values(EngineVersion::kV1, EngineVersion::kV2,
                                           EngineVersion::kV3, EngineVersion::kDev));

}  // namespace
}  // namespace dnsv

// Direct unit tests of the top-level specification rrlookup (paper Fig. 9),
// executed concretely. These pin down the *specification's* semantics
// independently of any engine version, so a regression in the spec cannot
// hide behind a matching regression in the engine.
#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"

namespace dnsv {
namespace {

class SpecSemanticsTest : public ::testing::Test {
 protected:
  void Load(const std::string& zone_text, EngineVersion version = EngineVersion::kGolden) {
    ZoneConfig zone = ParseZoneText(zone_text).value();
    auto server = AuthoritativeServer::Create(version, zone);
    ASSERT_TRUE(server.ok()) << server.error();
    server_ = std::move(server).value();
  }

  ResponseView Spec(const std::string& qname, RrType qtype) {
    QueryResult result = server_->QuerySpec(DnsName::Parse(qname).value(), qtype);
    EXPECT_FALSE(result.panicked) << result.panic_message;
    return result.response;
  }

  std::unique_ptr<AuthoritativeServer> server_;
};

constexpr char kSpecZone[] = R"(
$ORIGIN spec.test.
@        SOA   ns1 3
@        NS    ns1.spec.test.
@        MX    10 mail
ns1      A     192.0.2.1
mail     A     192.0.2.25
www      A     192.0.2.80
www      AAAA  99
alias    CNAME www
*.w      A     192.0.2.90
child    NS    ns1.child.spec.test.
ns1.child A    192.0.2.51
a.b.c    TXT   5
)";

TEST_F(SpecSemanticsTest, ExactMatchSelectsOnlyMatchingType) {
  Load(kSpecZone);
  ResponseView resp = Spec("www.spec.test", RrType::kAaaa);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.aa);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].type, RrType::kAaaa);
}

TEST_F(SpecSemanticsTest, AnyCollectsAllTypesInZoneOrder) {
  Load(kSpecZone);
  ResponseView resp = Spec("www.spec.test", RrType::kAny);
  ASSERT_EQ(resp.answer.size(), 2u);
  EXPECT_EQ(resp.answer[0].type, RrType::kA);
  EXPECT_EQ(resp.answer[1].type, RrType::kAaaa);
}

TEST_F(SpecSemanticsTest, NodataCarriesSoaAuthorityOnly) {
  Load(kSpecZone);
  ResponseView resp = Spec("www.spec.test", RrType::kTxt);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
  EXPECT_TRUE(resp.additional.empty());
}

TEST_F(SpecSemanticsTest, NxdomainForMissingName) {
  Load(kSpecZone);
  ResponseView resp = Spec("missing.spec.test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(resp.aa);
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

TEST_F(SpecSemanticsTest, EmptyNonTerminalsExistAtEveryDepth) {
  Load(kSpecZone);
  // a.b.c.spec.test creates ENTs at b.c and c.
  EXPECT_EQ(Spec("c.spec.test", RrType::kA).rcode, Rcode::kNoError);
  EXPECT_EQ(Spec("b.c.spec.test", RrType::kA).rcode, Rcode::kNoError);
  EXPECT_TRUE(Spec("b.c.spec.test", RrType::kA).answer.empty());
  EXPECT_EQ(Spec("x.c.spec.test", RrType::kA).rcode, Rcode::kNxDomain);
}

TEST_F(SpecSemanticsTest, WildcardSynthesizesOwnerName) {
  Load(kSpecZone);
  ResponseView resp = Spec("deep.host.w.spec.test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].name, "deep.host.w.spec.test");
}

TEST_F(SpecSemanticsTest, WildcardDoesNotApplyWhenNameExists) {
  Load(kSpecZone);
  // w.spec.test exists as the wildcard's parent ENT -> NODATA, not synthesis.
  ResponseView resp = Spec("w.spec.test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answer.empty());
}

TEST_F(SpecSemanticsTest, DelegationBeatsEverythingBelowTheCut) {
  Load(kSpecZone);
  ResponseView at_cut = Spec("child.spec.test", RrType::kA);
  EXPECT_FALSE(at_cut.aa);
  EXPECT_TRUE(at_cut.answer.empty());
  ASSERT_EQ(at_cut.authority.size(), 1u);
  EXPECT_EQ(at_cut.authority[0].type, RrType::kNs);
  ASSERT_EQ(at_cut.additional.size(), 1u);  // glue for ns1.child
  // Even the glue name itself is below the cut: referral.
  ResponseView below = Spec("ns1.child.spec.test", RrType::kA);
  EXPECT_TRUE(below.answer.empty());
  EXPECT_EQ(below.authority.size(), 1u);
}

TEST_F(SpecSemanticsTest, CnameRestartsAtTarget) {
  Load(kSpecZone);
  ResponseView resp = Spec("alias.spec.test", RrType::kA);
  ASSERT_EQ(resp.answer.size(), 2u);
  EXPECT_EQ(resp.answer[0].type, RrType::kCname);
  EXPECT_EQ(resp.answer[1].type, RrType::kA);
  EXPECT_EQ(resp.answer[1].name, "www.spec.test");
}

TEST_F(SpecSemanticsTest, CnameNotChasedForCnameQtype) {
  Load(kSpecZone);
  ResponseView resp = Spec("alias.spec.test", RrType::kCname);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_EQ(resp.answer[0].type, RrType::kCname);
}

TEST_F(SpecSemanticsTest, MxAnswerGetsExchangeGlue) {
  Load(kSpecZone);
  ResponseView resp = Spec("spec.test", RrType::kMx);
  ASSERT_EQ(resp.answer.size(), 1u);
  ASSERT_EQ(resp.additional.size(), 1u);
  EXPECT_EQ(resp.additional[0].name, "mail.spec.test");
}

TEST_F(SpecSemanticsTest, OutOfZoneIsRefused) {
  Load(kSpecZone);
  ResponseView resp = Spec("www.other.test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kRefused);
  EXPECT_FALSE(resp.aa);
}

TEST_F(SpecSemanticsTest, QueryShorterThanOriginIsRefused) {
  Load(kSpecZone);
  ResponseView resp = Spec("test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kRefused);
}

TEST_F(SpecSemanticsTest, CnameLoopTerminatesAtChaseBound) {
  Load(R"(
$ORIGIN loop.test.
@   SOA   ns 1
@   NS    ns.loop.test.
ns  A     192.0.2.1
a   CNAME b
b   CNAME a
)");
  ResponseView resp = Spec("a.loop.test", RrType::kA);
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  // 1 head link + MAX_CNAME_CHASE (8) chased links.
  EXPECT_EQ(resp.answer.size(), 9u);
  for (const RrView& rr : resp.answer) {
    EXPECT_EQ(rr.type, RrType::kCname);
  }
}

TEST_F(SpecSemanticsTest, V1SpecHasNoGlue) {
  Load(kSpecZone, EngineVersion::kV1);
  ResponseView resp = Spec("spec.test", RrType::kMx);
  ASSERT_EQ(resp.answer.size(), 1u);
  EXPECT_TRUE(resp.additional.empty());  // FEATURE_GLUE = 0 for the v1 era
}

TEST_F(SpecSemanticsTest, V4SpecAnswersMetaNotImp) {
  Load(kSpecZone, EngineVersion::kV4);
  ResponseView resp = Spec("www.spec.test", static_cast<RrType>(252));  // AXFR
  EXPECT_EQ(resp.rcode, Rcode::kNotImp);
  EXPECT_TRUE(resp.answer.empty());
}

TEST_F(SpecSemanticsTest, V5SpecAnswersQtypeOptFormErr) {
  // FEATURE_EDNS = 1 for the v5 era: asking *for* TYPE=OPT is a protocol
  // error (RFC 6891 §6.1.1), so the adapted spec answers FORMERR. Earlier
  // eras treat 41 as just another unknown type (clean NODATA).
  Load(kSpecZone, EngineVersion::kV5);
  ResponseView resp = Spec("www.spec.test", static_cast<RrType>(41));
  EXPECT_EQ(resp.rcode, Rcode::kFormErr);
  EXPECT_TRUE(resp.answer.empty());
  // The v4 NOTIMP gate is still on in the v5 era.
  ResponseView axfr = Spec("www.spec.test", static_cast<RrType>(252));
  EXPECT_EQ(axfr.rcode, Rcode::kNotImp);

  Load(kSpecZone, EngineVersion::kV4);
  ResponseView v4 = Spec("www.spec.test", static_cast<RrType>(41));
  EXPECT_EQ(v4.rcode, Rcode::kNoError);
  EXPECT_TRUE(v4.answer.empty());
}

TEST_F(SpecSemanticsTest, UnknownQtypeIsNodataNotError) {
  Load(kSpecZone);
  ResponseView resp = Spec("www.spec.test", static_cast<RrType>(77));
  EXPECT_EQ(resp.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answer.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type, RrType::kSoa);
}

}  // namespace
}  // namespace dnsv

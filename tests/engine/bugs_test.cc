// Concrete demonstrations of all nine Table-2 bugs: for each bug, a query
// where the buggy version diverges from the executable specification (or
// crashes), and evidence that golden agrees with the spec on the same query.
#include <gtest/gtest.h>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"

namespace dnsv {
namespace {

std::unique_ptr<AuthoritativeServer> Load(EngineVersion version, const ZoneConfig& zone) {
  auto server = AuthoritativeServer::Create(version, zone);
  EXPECT_TRUE(server.ok()) << server.error();
  return std::move(server).value();
}

// Runs qname/qtype on `version` and golden; both against the spec. Returns
// (buggy response, spec response).
struct BugProbe {
  ResponseView buggy;
  ResponseView spec;
  bool buggy_panicked = false;
  std::string panic_message;
};

BugProbe Probe(EngineVersion version, const ZoneConfig& zone, const std::string& qname,
               RrType qtype) {
  BugProbe probe;
  DnsName name = DnsName::Parse(qname).value();
  auto buggy_server = Load(version, zone);
  QueryResult buggy = buggy_server->Query(name, qtype);
  probe.buggy_panicked = buggy.panicked;
  probe.panic_message = buggy.panic_message;
  if (!buggy.panicked) {
    probe.buggy = buggy.response;
  }
  QueryResult spec = buggy_server->QuerySpec(name, qtype);
  EXPECT_FALSE(spec.panicked) << spec.panic_message;
  probe.spec = spec.response;
  // The spec for this version must agree with golden's spec-visible behavior
  // only when the feature sets match, so no cross-check here.
  return probe;
}

// Golden must agree with the (glue-enabled) spec on the probe query.
void ExpectGoldenAgrees(const ZoneConfig& zone, const std::string& qname, RrType qtype) {
  auto golden = Load(EngineVersion::kGolden, zone);
  DnsName name = DnsName::Parse(qname).value();
  QueryResult impl = golden->Query(name, qtype);
  QueryResult spec = golden->QuerySpec(name, qtype);
  ASSERT_FALSE(impl.panicked) << impl.panic_message;
  ASSERT_FALSE(spec.panicked) << spec.panic_message;
  EXPECT_EQ(impl.response, spec.response)
      << "golden impl:\n" << impl.response.ToString() << "spec:\n" << spec.response.ToString();
}

TEST(Bug1_WrongFlag, V1WildcardAnswerMissesAa) {
  BugProbe probe = Probe(EngineVersion::kV1, BugHuntZone(), "anything.corp.test", RrType::kTxt);
  EXPECT_TRUE(probe.spec.aa);
  EXPECT_FALSE(probe.buggy.aa);  // the bug
  EXPECT_EQ(probe.buggy.answer, probe.spec.answer);  // answer content is right
  ExpectGoldenAgrees(BugHuntZone(), "anything.corp.test", RrType::kTxt);
}

TEST(Bug2_WrongAuthority, V1PositiveAnswerCarriesApexNs) {
  BugProbe probe = Probe(EngineVersion::kV1, BugHuntZone(), "www.corp.test", RrType::kA);
  EXPECT_TRUE(probe.spec.authority.empty());
  ASSERT_EQ(probe.buggy.authority.size(), 2u);  // the bug: extraneous NS
  EXPECT_EQ(probe.buggy.authority[0].type, RrType::kNs);
  ExpectGoldenAgrees(BugHuntZone(), "www.corp.test", RrType::kA);
}

TEST(Bug3_WrongAnswer, V1MxAnswerPullsInARecords) {
  BugProbe probe = Probe(EngineVersion::kV1, BugHuntZone(), "shop.corp.test", RrType::kMx);
  ASSERT_EQ(probe.spec.answer.size(), 1u);
  EXPECT_EQ(probe.spec.answer[0].type, RrType::kMx);
  ASSERT_EQ(probe.buggy.answer.size(), 2u);  // the bug: MX + A
  EXPECT_EQ(probe.buggy.answer[1].type, RrType::kA);
  ExpectGoldenAgrees(BugHuntZone(), "shop.corp.test", RrType::kMx);
}

TEST(Bug4_WrongAdditional, V2GlueOnlyForFirstNs) {
  BugProbe probe =
      Probe(EngineVersion::kV2, BugHuntZone(), "host.child.corp.test", RrType::kA);
  ASSERT_EQ(probe.spec.additional.size(), 2u);  // glue for both NS targets
  ASSERT_EQ(probe.buggy.additional.size(), 1u);  // the bug: first only
  EXPECT_EQ(probe.buggy.additional[0].name, "ns1.child.corp.test");
  ExpectGoldenAgrees(BugHuntZone(), "host.child.corp.test", RrType::kA);
}

TEST(Bug5_WrongAdditional, V2WildcardMxAnswerLacksGlue) {
  BugProbe probe = Probe(EngineVersion::kV2, BugHuntZone(), "random.corp.test", RrType::kMx);
  ASSERT_EQ(probe.spec.additional.size(), 1u);  // glue for the MX exchange
  EXPECT_TRUE(probe.buggy.additional.empty());  // the bug
  EXPECT_EQ(probe.buggy.answer, probe.spec.answer);
  ExpectGoldenAgrees(BugHuntZone(), "random.corp.test", RrType::kMx);
}

TEST(Bug6_WrongAnswerRcode, V2DeepWildcardFallsToNxDomain) {
  BugProbe probe = Probe(EngineVersion::kV2, BugHuntZone(), "a.b.corp.test", RrType::kTxt);
  EXPECT_EQ(probe.spec.rcode, Rcode::kNoError);
  ASSERT_EQ(probe.spec.answer.size(), 1u);  // wildcard matches multiple labels
  EXPECT_EQ(probe.buggy.rcode, Rcode::kNxDomain);  // the bug
  EXPECT_TRUE(probe.buggy.answer.empty());
  ExpectGoldenAgrees(BugHuntZone(), "a.b.corp.test", RrType::kTxt);
}

TEST(Bug7_WrongAdditional, V2NoDataPicksUpSoaMnameGlue) {
  // www.corp.test exists with A only; TXT query is NODATA. v2 glues the SOA
  // mname's address records into the additional section.
  BugProbe probe = Probe(EngineVersion::kV2, BugHuntZone(), "www.corp.test", RrType::kTxt);
  EXPECT_TRUE(probe.spec.additional.empty());
  ASSERT_EQ(probe.buggy.additional.size(), 1u);  // the bug
  EXPECT_EQ(probe.buggy.additional[0].name, "ns1.corp.test");
  ExpectGoldenAgrees(BugHuntZone(), "www.corp.test", RrType::kTxt);
}

TEST(Bug8_WrongAnswerRcode, V3EntFallsBackToWildcard) {
  // box.corp.test is an empty non-terminal; the wildcard must NOT synthesize.
  BugProbe probe = Probe(EngineVersion::kV3, BugHuntZone(), "box.corp.test", RrType::kTxt);
  EXPECT_EQ(probe.spec.rcode, Rcode::kNoError);
  EXPECT_TRUE(probe.spec.answer.empty());  // NODATA
  ASSERT_EQ(probe.buggy.answer.size(), 1u);  // the bug: synthesized TXT
  EXPECT_EQ(probe.buggy.answer[0].rdata_value, 99);
  ExpectGoldenAgrees(BugHuntZone(), "box.corp.test", RrType::kTxt);
}

TEST(Bug8_WrongAnswerRcode, DevStillSynthesizesForLeafEnt) {
  // dev's "fix" keeps the fallback for leaf empty nodes; build a zone with a
  // leaf ENT: delegation-style empty node via a TXT at a sibling.
  ZoneConfig zone = ParseZoneText(R"(
$ORIGIN corp.test.
@     SOA ns1 1
@     NS  ns1.corp.test.
ns1   A   198.51.100.1
*     TXT 99
; "park" is exactly matched but owns nothing and has no children: the
; canonicalizer keeps it because of the TXT record two levels down, which we
; then don't create... instead use an explicit empty-ish node via wildcard
; sibling: a leaf ENT cannot exist in a well-formed zone, so dev's remaining
; bug manifests through the grandparent re-check below instead.
deep.box A 198.51.100.40
)").value();
  // Query under box: closest encloser is box (no wildcard child); dev
  // re-checks the grandparent (the apex) and wrongly synthesizes from *.
  BugProbe probe = Probe(EngineVersion::kDev, zone, "x.box.corp.test", RrType::kTxt);
  EXPECT_EQ(probe.spec.rcode, Rcode::kNxDomain);  // *.corp.test must not apply
  ASSERT_FALSE(probe.buggy_panicked) << probe.panic_message;
  EXPECT_EQ(probe.buggy.rcode, Rcode::kNoError);  // the bug
  ASSERT_EQ(probe.buggy.answer.size(), 1u);
}

TEST(Bug9_RuntimeError, DevCrashesOnNxDomainUnderApex) {
  // KitchenSink has no apex wildcard: a missing name directly under the apex
  // leaves the traversal stack at level 1; dev reads stack[level-2].
  BugProbe probe =
      Probe(EngineVersion::kDev, KitchenSinkZone(), "missing.example.com", RrType::kA);
  EXPECT_TRUE(probe.buggy_panicked);  // the bug: invalid memory access
  EXPECT_EQ(probe.panic_message, "index out of range");
  EXPECT_EQ(probe.spec.rcode, Rcode::kNxDomain);
  ExpectGoldenAgrees(KitchenSinkZone(), "missing.example.com", RrType::kA);
}

TEST(GoldenVersion, NoBugProbeDiverges) {
  const std::pair<std::string, RrType> probes[] = {
      {"anything.corp.test", RrType::kTxt}, {"www.corp.test", RrType::kA},
      {"shop.corp.test", RrType::kMx},      {"host.child.corp.test", RrType::kA},
      {"random.corp.test", RrType::kMx},    {"a.b.corp.test", RrType::kTxt},
      {"www.corp.test", RrType::kTxt},      {"box.corp.test", RrType::kTxt},
      {"corp.test", RrType::kAny},          {"corp.test", RrType::kNs},
  };
  auto golden = Load(EngineVersion::kGolden, BugHuntZone());
  for (const auto& [qname, qtype] : probes) {
    DnsName name = DnsName::Parse(qname).value();
    QueryResult impl = golden->Query(name, qtype);
    QueryResult spec = golden->QuerySpec(name, qtype);
    ASSERT_FALSE(impl.panicked) << qname << ": " << impl.panic_message;
    ASSERT_FALSE(spec.panicked) << qname << ": " << spec.panic_message;
    EXPECT_EQ(impl.response, spec.response)
        << qname << "\nimpl:\n" << impl.response.ToString() << "spec:\n"
        << spec.response.ToString();
  }
}

}  // namespace
}  // namespace dnsv

#include "src/ir/type.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

class TypeTest : public ::testing::Test {
 protected:
  TypeTable types_;
};

TEST_F(TypeTest, PrimitivesAreInterned) {
  EXPECT_EQ(types_.IntType(), types_.IntType());
  EXPECT_NE(types_.IntType(), types_.BoolType());
  EXPECT_NE(types_.IntType(), types_.VoidType());
}

TEST_F(TypeTest, PtrAndListIntern) {
  Type p1 = types_.PtrTo(types_.IntType());
  Type p2 = types_.PtrTo(types_.IntType());
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, types_.PtrTo(types_.BoolType()));
  EXPECT_EQ(types_.ListOf(types_.IntType()), types_.ListOf(types_.IntType()));
  EXPECT_NE(types_.ListOf(types_.IntType()), types_.PtrTo(types_.IntType()));
}

TEST_F(TypeTest, PointeeAndElementAccessors) {
  Type p = types_.PtrTo(types_.ListOf(types_.IntType()));
  EXPECT_TRUE(types_.IsPtr(p));
  Type l = types_.Pointee(p);
  EXPECT_TRUE(types_.IsList(l));
  EXPECT_EQ(types_.ListElement(l), types_.IntType());
}

TEST_F(TypeTest, CircularStructViaPointer) {
  // TreeNode { left, right, down *TreeNode } — the paper's domain tree shape.
  Type node_type = types_.StructType("TreeNode");
  Type node_ptr = types_.PtrTo(node_type);
  types_.DefineStruct("TreeNode", {{"left", node_ptr}, {"right", node_ptr}, {"down", node_ptr}});
  const StructDef& def = types_.GetStruct("TreeNode");
  EXPECT_EQ(def.fields.size(), 3u);
  EXPECT_EQ(def.fields[0].type, node_ptr);
  EXPECT_EQ(def.FieldIndex("down"), 2);
  EXPECT_EQ(def.FieldIndex("missing"), -1);
}

TEST_F(TypeTest, ForwardDeclaredStructHandleStable) {
  Type before = types_.StructType("Response");
  types_.DefineStruct("Response", {{"rcode", types_.IntType()}});
  Type after = types_.StructType("Response");
  EXPECT_EQ(before, after);
  EXPECT_TRUE(types_.IsStructDefined("Response"));
  EXPECT_FALSE(types_.IsStructDefined("Nope"));
}

TEST_F(TypeTest, ToStringReadable) {
  Type t = types_.PtrTo(types_.ListOf(types_.StructType("RR")));
  EXPECT_EQ(types_.ToString(t), "*[]RR");
}

}  // namespace
}  // namespace dnsv

#include "src/ir/validate.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace dnsv {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest() : module_(&types_) {}
  TypeTable types_;
  Module module_;
};

TEST_F(ValidateTest, RejectsEmptyFunction) {
  Function* fn = module_.AddFunction("empty", {}, types_.VoidType());
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no blocks"), std::string::npos);
}

TEST_F(ValidateTest, RejectsMissingTerminator) {
  Function* fn = module_.AddFunction("f", {{"x", types_.IntType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.BinaryOp(BinOp::kAdd, b.Param(0), b.Int(1), types_.IntType());
  // no ret
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("terminator"), std::string::npos);
}

TEST_F(ValidateTest, RejectsReturnTypeMismatch) {
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Ret(b.Bool(true));
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("return type"), std::string::npos);
}

TEST_F(ValidateTest, RejectsUnknownCallee) {
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand r = b.Call("doesNotExist", {}, types_.IntType());
  b.Ret(r);
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown function"), std::string::npos);
}

TEST_F(ValidateTest, RejectsCallArityMismatch) {
  Function* callee = module_.AddFunction("g", {{"x", types_.IntType()}}, types_.IntType());
  {
    IrBuilder b(&module_, callee);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Param(0));
  }
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand r = b.Call("g", {}, types_.IntType());
  b.Ret(r);
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST_F(ValidateTest, RejectsNonConstantStructFieldIndex) {
  Type rr = types_.StructType("S");
  types_.DefineStruct("S", {{"a", types_.IntType()}, {"b", types_.IntType()}});
  Function* fn =
      module_.AddFunction("f", {{"p", types_.PtrTo(rr)}, {"i", types_.IntType()}},
                          types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  // gep with a dynamic index into a struct is ill-formed.
  Instr gep;
  gep.op = Opcode::kGep;
  gep.result_type = types_.PtrTo(types_.IntType());
  gep.operands = {b.Param(0), b.Param(1)};
  uint32_t reg = fn->Append(b.insert_point(), std::move(gep));
  b.Ret(b.Load(Operand::Reg(reg, types_.PtrTo(types_.IntType()))));
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("constant"), std::string::npos);
}

TEST_F(ValidateTest, RejectsUseBeforeDef) {
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  // Forge an operand referencing a later register.
  Instr add;
  add.op = Opcode::kBinOp;
  add.bin_op = BinOp::kAdd;
  add.result_type = types_.IntType();
  add.operands = {Operand::Reg(99, types_.IntType()), Operand::IntConst(1, types_.IntType())};
  uint32_t reg = fn->Append(b.insert_point(), std::move(add));
  b.Ret(Operand::Reg(reg, types_.IntType()));
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("before definition"), std::string::npos);
}

TEST_F(ValidateTest, RejectsBadBranchTarget) {
  Function* fn = module_.AddFunction("f", {}, types_.VoidType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Instr jmp;
  jmp.op = Opcode::kJmp;
  jmp.result_type = types_.VoidType();
  jmp.target_true = 42;
  fn->Append(b.insert_point(), std::move(jmp));
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("target out of range"), std::string::npos);
}

TEST_F(ValidateTest, AcceptsListEqBuiltin) {
  Type int_list = types_.ListOf(types_.IntType());
  Function* fn = module_.AddFunction("f", {{"a", int_list}, {"b", int_list}}, types_.BoolType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand eq = b.Call("listEq", {b.Param(0), b.Param(1)}, types_.BoolType());
  b.Ret(eq);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

// The analysis layer's discharge pass assumes a panic block has no successor
// edges: a block marked is_panic_block must terminate with panic, nothing
// else.
TEST_F(ValidateTest, RejectsPanicBlockWithoutPanicTerminator) {
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  b.SetInsertPoint(entry);
  b.Ret(b.Int(0));
  fn->block(entry).is_panic_block = true;
  Status s = ValidateFunction(module_, *fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("panic block must terminate with panic"), std::string::npos);
}

TEST_F(ValidateTest, AcceptsProperPanicBlock) {
  Function* fn = module_.AddFunction("f", {{"flag", types_.BoolType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  BlockId ok = b.CreateBlock("ok");
  b.SetInsertPoint(entry);
  BlockId panic_bb = b.GetPanicBlock("boom");
  b.Br(b.Param(0), panic_bb, ok);
  b.SetInsertPoint(ok);
  b.Ret(b.Int(0));
  EXPECT_TRUE(fn->block(panic_bb).is_panic_block);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

// require_reachable is the post-prune invariant: off by default (the
// frontend legitimately emits unreachable continuations), on after the
// pruning pass compacts the function.
TEST_F(ValidateTest, RequireReachableFlagsOrphanBlocks) {
  Function* fn = module_.AddFunction("f", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Ret(b.Int(0));
  b.SetInsertPoint(b.CreateBlock("orphan"));
  b.Ret(b.Int(1));
  // Default validation tolerates the orphan...
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
  // ...the strict post-prune validation does not.
  ValidateOptions strict;
  strict.require_reachable = true;
  Status s = ValidateFunction(module_, *fn, strict);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unreachable"), std::string::npos);
}

}  // namespace
}  // namespace dnsv

#include "src/ir/printer.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"

namespace dnsv {
namespace {

TEST(Printer, GoldenDumpOfCompiledFunction) {
  TypeTable types;
  Module module(&types);
  Result<CompileOutput> compiled = CompileMiniGo(
      {{"t.mg", "func inc(x int) int { return x + 1 }"}}, &module);
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  std::string text = PrintFunction(module, *module.GetFunction("inc"));
  // The exact shape of the -O0-style lowering: spill, load, add, ret.
  EXPECT_EQ(text,
            "func inc(x int) int {\n"
            "bb0:  ; entry\n"
            "  %0 = alloca int\n"
            "  store %0, %x\n"
            "  %2 = load %0\n"
            "  %3 = add %2, 1\n"
            "  ret %3\n"
            "}\n");
}

TEST(Printer, PanicBlocksAreMarked) {
  TypeTable types;
  Module module(&types);
  Result<CompileOutput> compiled = CompileMiniGo(
      {{"t.mg", "func get(s []int, i int) int { return s[i] }"}}, &module);
  ASSERT_TRUE(compiled.ok());
  std::string text = PrintModule(module);
  EXPECT_NE(text.find("[panic]"), std::string::npos);
  EXPECT_NE(text.find("panic \"index out of range\""), std::string::npos);
}

}  // namespace
}  // namespace dnsv

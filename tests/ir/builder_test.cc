#include "src/ir/builder.h"

#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/ir/validate.h"

namespace dnsv {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() : module_(&types_) {}
  TypeTable types_;
  Module module_;
};

TEST_F(BuilderTest, BuildsStraightLineFunction) {
  // func addOne(x int) int { return x + 1 }
  Function* fn = module_.AddFunction("addOne", {{"x", types_.IntType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  b.SetInsertPoint(entry);
  Operand sum = b.BinaryOp(BinOp::kAdd, b.Param(0), b.Int(1), types_.IntType());
  b.Ret(sum);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
  std::string text = PrintFunction(module_, *fn);
  EXPECT_NE(text.find("add %x, 1"), std::string::npos);
  EXPECT_NE(text.find("ret %0"), std::string::npos);
}

TEST_F(BuilderTest, BuildsBranchAndLocals) {
  // func max(a, b int) int { var m int; if a < b { m = b } else { m = a }; return m }
  Function* fn = module_.AddFunction(
      "max", {{"a", types_.IntType()}, {"b", types_.IntType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  BlockId then_bb = b.CreateBlock("then");
  BlockId else_bb = b.CreateBlock("else");
  BlockId join = b.CreateBlock("join");
  b.SetInsertPoint(entry);
  Operand m = b.Alloca(types_.IntType());
  Operand lt = b.BinaryOp(BinOp::kLt, b.Param(0), b.Param(1), types_.BoolType());
  b.Br(lt, then_bb, else_bb);
  b.SetInsertPoint(then_bb);
  b.Store(m, b.Param(1));
  b.Jmp(join);
  b.SetInsertPoint(else_bb);
  b.Store(m, b.Param(0));
  b.Jmp(join);
  b.SetInsertPoint(join);
  Operand result = b.Load(m);
  b.Ret(result);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

TEST_F(BuilderTest, ListOperations) {
  Function* fn = module_.AddFunction("listOps", {}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand list = b.ListNew(types_.IntType());
  Operand list2 = b.ListAppend(list, b.Int(7));
  Operand list3 = b.ListAppend(list2, b.Int(9));
  Operand elem = b.ListGet(list3, b.Int(1));
  Operand len = b.ListLen(list3);
  Operand sum = b.BinaryOp(BinOp::kAdd, elem, len, types_.IntType());
  b.Ret(sum);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

TEST_F(BuilderTest, GepThroughStructAndList) {
  Type rr = types_.StructType("RR");
  types_.DefineStruct("RR", {{"rtype", types_.IntType()},
                             {"labels", types_.ListOf(types_.IntType())}});
  Function* fn =
      module_.AddFunction("firstLabel", {{"rr", types_.PtrTo(rr)}}, types_.IntType());
  IrBuilder b(&module_, fn);
  b.SetInsertPoint(b.CreateBlock("entry"));
  Operand labels_ptr = b.Gep(b.Param(0), {b.Int(1)}, types_.ListOf(types_.IntType()));
  Operand labels = b.Load(labels_ptr);
  Operand first = b.ListGet(labels, b.Int(0));
  b.Ret(first);
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

TEST_F(BuilderTest, PanicBlockDeduplicated) {
  Function* fn = module_.AddFunction("checked", {{"i", types_.IntType()}}, types_.IntType());
  IrBuilder b(&module_, fn);
  BlockId entry = b.CreateBlock("entry");
  b.SetInsertPoint(entry);
  BlockId p1 = b.GetPanicBlock("index out of range");
  BlockId p2 = b.GetPanicBlock("index out of range");
  BlockId p3 = b.GetPanicBlock("nil pointer dereference");
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_TRUE(fn->block(p1).is_panic_block);
  // Entry still needs a terminator for validation.
  BlockId done = b.CreateBlock("done");
  Operand neg = b.BinaryOp(BinOp::kLt, b.Param(0), b.Int(0), types_.BoolType());
  b.Br(neg, p1, done);
  b.SetInsertPoint(done);
  b.Ret(b.Param(0));
  EXPECT_TRUE(ValidateFunction(module_, *fn).ok());
}

TEST_F(BuilderTest, CallBetweenFunctions) {
  Function* callee = module_.AddFunction("id", {{"x", types_.IntType()}}, types_.IntType());
  {
    IrBuilder b(&module_, callee);
    b.SetInsertPoint(b.CreateBlock("entry"));
    b.Ret(b.Param(0));
  }
  Function* caller = module_.AddFunction("caller", {}, types_.IntType());
  {
    IrBuilder b(&module_, caller);
    b.SetInsertPoint(b.CreateBlock("entry"));
    Operand r = b.Call("id", {b.Int(5)}, types_.IntType());
    b.Ret(r);
  }
  EXPECT_TRUE(ValidateModule(module_).ok());
}

}  // namespace
}  // namespace dnsv

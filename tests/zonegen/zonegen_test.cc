#include "src/zonegen/zonegen.h"

#include <gtest/gtest.h>

#include <set>

namespace dnsv {
namespace {

TEST(ZoneGen, DeterministicForSeed) {
  ZoneConfig a = GenerateZone(42);
  ZoneConfig b = GenerateZone(42);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]);
  }
}

TEST(ZoneGen, SeedsDiffer) {
  EXPECT_NE(GenerateZone(1).ToText(), GenerateZone(2).ToText());
}

// Every generated zone must already be canonical (the generator promises a
// canonicalizable config and canonicalizes internally).
class ZoneGenSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZoneGenSweep, AlwaysCanonical) {
  ZoneConfig zone = GenerateZone(GetParam());
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  ASSERT_TRUE(canonical.ok()) << canonical.error() << "\n" << zone.ToText();
  // Canonicalizing a canonical zone is a fixpoint.
  EXPECT_EQ(canonical.value().ToText(), zone.ToText());
}

TEST_P(ZoneGenSweep, HasApexInfrastructure) {
  ZoneConfig zone = GenerateZone(GetParam());
  int apex_soa = 0;
  int apex_ns = 0;
  for (const ZoneRecord& record : zone.records) {
    if (record.name == zone.origin) {
      apex_soa += record.type == RrType::kSoa ? 1 : 0;
      apex_ns += record.type == RrType::kNs ? 1 : 0;
    }
  }
  EXPECT_EQ(apex_soa, 1);
  EXPECT_GE(apex_ns, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneGenSweep, ::testing::Range(uint64_t{0}, uint64_t{40}));

TEST(ZoneGen, CorpusCoversDiverseScenarios) {
  // The paper favors complex names ('*' at various positions) and
  // intertwined records (§9); over a modest corpus, all features must appear.
  bool any_wildcard = false, any_delegation = false, any_cname = false, any_mx = false,
       any_deep = false;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    ZoneConfig zone = GenerateZone(seed);
    for (const ZoneRecord& record : zone.records) {
      any_wildcard = any_wildcard || record.name.labels[0] == kWildcardLabel;
      any_cname = any_cname || record.type == RrType::kCname;
      any_mx = any_mx || record.type == RrType::kMx;
      any_delegation =
          any_delegation || (record.type == RrType::kNs && record.name != zone.origin);
      any_deep = any_deep || record.name.NumLabels() >= zone.origin.NumLabels() + 3;
    }
  }
  EXPECT_TRUE(any_wildcard);
  EXPECT_TRUE(any_delegation);
  EXPECT_TRUE(any_cname);
  EXPECT_TRUE(any_mx);
  EXPECT_TRUE(any_deep);
}

TEST(ZoneGen, OptionsDisableFeatures) {
  ZoneGenOptions options;
  options.allow_wildcards = false;
  options.allow_delegations = false;
  options.allow_cnames = false;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    ZoneConfig zone = GenerateZone(seed, options);
    for (const ZoneRecord& record : zone.records) {
      EXPECT_NE(record.name.labels[0], kWildcardLabel);
      EXPECT_NE(record.type, RrType::kCname);
      if (record.type == RrType::kNs) {
        EXPECT_EQ(record.name, zone.origin);
      }
    }
  }
}

TEST(InterestingQueryNames, CoversOwnersAncestorsAndProbes) {
  ZoneConfig zone = GenerateZone(7);
  std::vector<DnsName> names = InterestingQueryNames(zone, 7);
  std::set<std::string> set;
  for (const DnsName& name : names) {
    set.insert(name.ToString());
  }
  // Every owner appears.
  for (const ZoneRecord& record : zone.records) {
    EXPECT_TRUE(set.count(record.name.ToString())) << record.name.ToString();
  }
  // The apex and an out-of-zone probe appear.
  EXPECT_TRUE(set.count(zone.origin.ToString()));
  EXPECT_TRUE(set.count("not.in.this.zone.example"));
  // No duplicates by construction.
  EXPECT_EQ(set.size(), names.size());
}

TEST(AllQueryTypes, IncludesAnyAndConcreteTypes) {
  std::vector<RrType> types = AllQueryTypes();
  EXPECT_NE(std::find(types.begin(), types.end(), RrType::kAny), types.end());
  EXPECT_NE(std::find(types.begin(), types.end(), RrType::kA), types.end());
  EXPECT_GE(types.size(), 8u);
}

}  // namespace
}  // namespace dnsv

#include "src/support/rng.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextInRangeStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(SplitMix64, NextBelowCoversSmallRange) {
  SplitMix64 rng(123);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) {
    seen[rng.NextBelow(5)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

}  // namespace
}  // namespace dnsv

#include "src/support/strings.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(SplitString, BasicSplit) {
  EXPECT_EQ(SplitString("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitString, KeepsEmptyPieces) {
  EXPECT_EQ(SplitString("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString(".", '.'), (std::vector<std::string>{"", ""}));
}

TEST(JoinStrings, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"www", "example", "com"};
  EXPECT_EQ(JoinStrings(parts, "."), "www.example.com");
  EXPECT_EQ(SplitString(JoinStrings(parts, "."), '.'), parts);
}

TEST(TrimWhitespace, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("example.com", "exam"));
  EXPECT_FALSE(StartsWith("exam", "example"));
  EXPECT_TRUE(EndsWith("www.example.com", ".com"));
  EXPECT_FALSE(EndsWith("com", ".com"));
}

TEST(ToLowerAscii, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("WwW.ExAmPlE"), "www.example");
}

TEST(StrCat, MixedTypes) { EXPECT_EQ(StrCat("n=", 42, ", x=", 1.5), "n=42, x=1.5"); }

TEST(ParseInt64, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("12345", &v));
  EXPECT_EQ(v, 12345);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

}  // namespace
}  // namespace dnsv

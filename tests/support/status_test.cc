#include "src/support/status.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::Error("bad zone line 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad zone line 3");
}

TEST(Result, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
}

TEST(Result, HoldsError) {
  Result<int> r = Result<int>::Error("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "nope");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace dnsv

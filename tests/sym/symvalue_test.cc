#include "src/sym/symvalue.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

class SymValueTest : public ::testing::Test {
 protected:
  TermArena arena_;
};

TEST_F(SymValueTest, LiftConcreteValue) {
  Value v = Value::Struct({Value::Int(7), Value::Bool(true), Value::NullPtr(),
                           Value::List({Value::Int(1), Value::Int(2)})});
  SymValue lifted = LiftValue(v, &arena_);
  ASSERT_EQ(lifted.kind, SymValue::Kind::kStruct);
  int64_t iv = 0;
  EXPECT_TRUE(arena_.AsIntConst(lifted.elems[0].term, &iv));
  EXPECT_EQ(iv, 7);
  bool bv = false;
  EXPECT_TRUE(arena_.AsBoolConst(lifted.elems[1].term, &bv));
  EXPECT_TRUE(bv);
  EXPECT_TRUE(lifted.elems[2].IsNullPtr());
  ASSERT_EQ(lifted.elems[3].kind, SymValue::Kind::kList);
  EXPECT_TRUE(arena_.AsIntConst(lifted.elems[3].list_len, &iv));
  EXPECT_EQ(iv, 2);
}

TEST_F(SymValueTest, LiftMemoryPreservesBlockIds) {
  ConcreteMemory memory;
  BlockIndex a = memory.Alloc(Value::Int(1));
  BlockIndex b = memory.Alloc(Value::List({Value::Int(9)}));
  SymMemory lifted = LiftMemory(memory, &arena_);
  EXPECT_EQ(lifted.num_blocks(), memory.num_blocks());
  int64_t v = 0;
  EXPECT_TRUE(arena_.AsIntConst(lifted.Resolve(a, {})->term, &v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(arena_.AsIntConst(lifted.Resolve(b, {0})->term, &v));
  EXPECT_EQ(v, 9);
}

TEST_F(SymValueTest, ConcretizeRoundTrip) {
  Value v = Value::Struct({Value::Int(5), Value::List({Value::Bool(false)})});
  SymValue lifted = LiftValue(v, &arena_);
  Value back = ConcretizeValue(lifted, arena_, nullptr);
  EXPECT_EQ(back, v);
}

TEST_F(SymValueTest, ConcretizeUsesModel) {
  SymValue sym = SymValue::OfTerm(arena_.Var("x", Sort::kInt));
  Model model;
  model.Set("x", 42);
  EXPECT_EQ(ConcretizeValue(sym, arena_, &model), Value::Int(42));
}

TEST_F(SymValueTest, ConcretizeSymbolicLengthList) {
  SymValue list;
  list.kind = SymValue::Kind::kList;
  list.list_len = arena_.Var("len", Sort::kInt);
  list.elems = {SymValue::OfTerm(arena_.Var("e0", Sort::kInt)),
                SymValue::OfTerm(arena_.Var("e1", Sort::kInt)),
                SymValue::OfTerm(arena_.Var("e2", Sort::kInt))};
  Model model;
  model.Set("len", 2);
  model.Set("e0", 10);
  model.Set("e1", 20);
  Value v = ConcretizeValue(list, arena_, &model);
  ASSERT_EQ(v.elems.size(), 2u);
  EXPECT_EQ(v.elems[0], Value::Int(10));
  EXPECT_EQ(v.elems[1], Value::Int(20));
}

TEST_F(SymValueTest, SymZeroValueMatchesConcreteZero) {
  TypeTable types;
  Type node = types.StructType("N");
  types.DefineStruct("N", {{"x", types.IntType()},
                           {"next", types.PtrTo(node)},
                           {"xs", types.ListOf(types.IntType())}});
  SymValue zero = SymZeroValue(types, node, &arena_);
  EXPECT_EQ(ConcretizeValue(zero, arena_, nullptr), ZeroValueOf(types, node));
}

}  // namespace
}  // namespace dnsv

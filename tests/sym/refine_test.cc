// Refinement-checking tests, including the paper's compareRaw/compareAbs
// case study (Figs. 4 and 10) at the heart of §6.3.
#include "src/sym/refine.h"

#include <gtest/gtest.h>

#include "src/engine/sources/sources.h"
#include "src/frontend/frontend.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

class RefineTest : public ::testing::Test {
 protected:
  void Compile(const std::string& source) {
    types_ = std::make_unique<TypeTable>();
    module_ = std::make_unique<Module>(types_.get());
    Result<CompileOutput> compiled = CompileMiniGo({{"test.mg", source}}, module_.get());
    ASSERT_TRUE(compiled.ok()) << compiled.error();
    arena_ = std::make_unique<TermArena>();
    solver_ = std::make_unique<SolverSession>(arena_.get());
    executor_ = std::make_unique<SymExecutor>(module_.get(), arena_.get(), solver_.get());
  }

  RefinementResult Check(const std::string& impl, const std::string& spec,
                         const std::vector<SymValue>& args, Term constraints) {
    SymState state;
    state.pc = constraints.valid() ? constraints : arena_->True();
    return CheckFunctionRefinement(executor_.get(), *module_->GetFunction(impl),
                                   *module_->GetFunction(spec), args, state);
  }

  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
  std::unique_ptr<TermArena> arena_;
  std::unique_ptr<SolverSession> solver_;
  std::unique_ptr<SymExecutor> executor_;
};

TEST_F(RefineTest, EquivalentImplementationsRefine) {
  Compile(R"(
func implMax(a int, b int) int {
  if a < b {
    return b
  }
  return a
}
func specMax(a int, b int) int {
  m := a
  if b > m {
    m = b
  }
  return m
}
)");
  SymbolicInt a = MakeSymbolicInt(arena_.get(), "a", -1000, 1000);
  SymbolicInt b = MakeSymbolicInt(arena_.get(), "b", -1000, 1000);
  RefinementResult result = Check("implMax", "specMax", {a.value, b.value},
                                  arena_->And(a.constraints, b.constraints));
  EXPECT_TRUE(result.ok()) << (result.mismatches.empty() ? result.abort_reason
                                                         : result.mismatches[0].description);
  EXPECT_EQ(result.impl_paths, 2);
}

TEST_F(RefineTest, BuggyImplementationCaught) {
  Compile(R"(
func implMax(a int, b int) int {
  if a <= b {
    return a
  }
  return a
}
func specMax(a int, b int) int {
  if a < b {
    return b
  }
  return a
}
)");
  SymbolicInt a = MakeSymbolicInt(arena_.get(), "a", -10, 10);
  SymbolicInt b = MakeSymbolicInt(arena_.get(), "b", -10, 10);
  RefinementResult result = Check("implMax", "specMax", {a.value, b.value},
                                  arena_->And(a.constraints, b.constraints));
  ASSERT_FALSE(result.ok());
  // The witness must actually distinguish them: a < b.
  int64_t wa = 0, wb = 0;
  ASSERT_TRUE(result.mismatches[0].model.Get("a", &wa));
  ASSERT_TRUE(result.mismatches[0].model.Get("b", &wb));
  EXPECT_LT(wa, wb);
}

TEST_F(RefineTest, PanicInImplementationIsAMismatch) {
  Compile(R"(
func impl(xs []int, i int) int { return xs[i] }
func spec(xs []int, i int) int { return 0 }
)");
  SymbolicIntList xs = MakeSymbolicIntList(arena_.get(), "xs", 2, 0, 9);
  SymbolicInt i = MakeSymbolicInt(arena_.get(), "i", -5, 5);
  RefinementResult result = Check("impl", "spec", {xs.value, i.value},
                                  arena_->And(xs.constraints, i.constraints));
  ASSERT_FALSE(result.ok());
  bool found_panic = false;
  for (const RefinementMismatch& mismatch : result.mismatches) {
    found_panic = found_panic ||
                  mismatch.description.find("panic") != std::string::npos;
  }
  EXPECT_TRUE(found_panic);
}

// The paper's loop-heavy vs abstract name comparison (§6.3): nameCompare
// (the engine library) against a hand-written linear-arithmetic spec.
TEST_F(RefineTest, NameCompareAgainstAbstractSpec) {
  std::string source = StrCat(kEngineTypesMg, R"(
func nameCompareImpl(n1 []int, n2 []int) int {
  if len(n2) > len(n1) {
    return MATCH_NOMATCH
  }
  for i := 0; i < len(n2); i = i + 1 {
    if n1[i] != n2[i] {
      return MATCH_NOMATCH
    }
  }
  if len(n1) == len(n2) {
    return MATCH_EXACT
  }
  return MATCH_PARTIAL
}
// Abstract spec specialized for a concrete n2 of length 2 (like Fig. 10's
// "www.example.com" example): all branch conditions are simple comparisons.
func nameCompareSpec2(n1 []int, a int, b int) int {
  if len(n1) < 2 {
    return MATCH_NOMATCH
  }
  if n1[0] != a {
    return MATCH_NOMATCH
  }
  if n1[1] != b {
    return MATCH_NOMATCH
  }
  if len(n1) == 2 {
    return MATCH_EXACT
  }
  return MATCH_PARTIAL
}
func nameCompareImplWrap(n1 []int, a int, b int) int {
  n2 := make([]int)
  n2 = append(n2, a)
  n2 = append(n2, b)
  return nameCompareImpl(n1, n2)
}
)");
  Compile(source);
  SymbolicIntList n1 = MakeSymbolicIntList(arena_.get(), "n1", 4, 1, 1000);
  SymbolicInt a = MakeSymbolicInt(arena_.get(), "a", 1, 1000);
  SymbolicInt b = MakeSymbolicInt(arena_.get(), "b", 1, 1000);
  Term constraints = arena_->AndN({n1.constraints, a.constraints, b.constraints});
  RefinementResult result =
      Check("nameCompareImplWrap", "nameCompareSpec2", {n1.value, a.value, b.value},
            constraints);
  EXPECT_TRUE(result.ok()) << (result.mismatches.empty() ? result.abort_reason
                                                         : result.mismatches[0].description);
}

// Fig. 4 vs Fig. 10: compareRaw over raw bytes against compareAbs over
// interned labels, related by a byte<->label abstraction. The relation here
// encodes each label as its byte sequence; the harness quantifies over all
// two-label byte names with single-character labels, which exercises every
// compareRaw path shape (equal, suffix, mismatch, dot alignment).
TEST_F(RefineTest, CompareRawRefinesCompareAbs) {
  std::string source = StrCat(kEngineCompareRawMg, R"(
// Builds the raw byte form "y.x" (display order) of the reversed label list
// [x, y] where each label is one byte; then compares with compareRaw. The
// abstraction maps single-byte labels to their byte value as the label code.
func rawOfTwo(x int, y int) []int {
  out := make([]int)
  out = append(out, y)
  out = append(out, DOT)
  out = append(out, x)
  return out
}
func rawOfOne(x int) []int {
  out := make([]int)
  out = append(out, x)
  return out
}
// impl side: compare the byte encodings of [a1,a2] vs [b1] (two labels vs one).
func implTwoVsOne(a1 int, a2 int, b1 int) int {
  return compareRaw(rawOfTwo(a1, a2), rawOfOne(b1))
}
// spec side: compareAbs on the abstract label lists.
func specTwoVsOne(a1 int, a2 int, b1 int) int {
  la := make([]int)
  la = append(la, a1)
  la = append(la, a2)
  lb := make([]int)
  lb = append(lb, b1)
  return compareAbs(la, lb)
}
func implTwoVsTwo(a1 int, a2 int, b1 int, b2 int) int {
  return compareRaw(rawOfTwo(a1, a2), rawOfTwo(b1, b2))
}
func specTwoVsTwo(a1 int, a2 int, b1 int, b2 int) int {
  la := make([]int)
  la = append(la, a1)
  la = append(la, a2)
  lb := make([]int)
  lb = append(lb, b1)
  lb = append(lb, b2)
  return compareAbs(la, lb)
}
)");
  Compile(source);
  // Label bytes are letters: 'a'..'z' (so never equal to DOT=46).
  SymbolicInt a1 = MakeSymbolicInt(arena_.get(), "a1", 97, 122);
  SymbolicInt a2 = MakeSymbolicInt(arena_.get(), "a2", 97, 122);
  SymbolicInt b1 = MakeSymbolicInt(arena_.get(), "b1", 97, 122);
  SymbolicInt b2 = MakeSymbolicInt(arena_.get(), "b2", 97, 122);
  Term c3 = arena_->AndN({a1.constraints, a2.constraints, b1.constraints});
  RefinementResult two_vs_one =
      Check("implTwoVsOne", "specTwoVsOne", {a1.value, a2.value, b1.value}, c3);
  EXPECT_TRUE(two_vs_one.ok())
      << (two_vs_one.mismatches.empty() ? two_vs_one.abort_reason
                                        : two_vs_one.mismatches[0].description);
  Term c4 = arena_->AndN({a1.constraints, a2.constraints, b1.constraints, b2.constraints});
  RefinementResult two_vs_two = Check(
      "implTwoVsTwo", "specTwoVsTwo", {a1.value, a2.value, b1.value, b2.value}, c4);
  EXPECT_TRUE(two_vs_two.ok())
      << (two_vs_two.mismatches.empty() ? two_vs_two.abort_reason
                                        : two_vs_two.mismatches[0].description);
}

TEST_F(RefineTest, SymValueEqTermOnStructs) {
  TermArena arena;
  SymValue a = SymValue::Struct({SymValue::OfTerm(arena.Var("x", Sort::kInt)),
                                 SymValue::OfTerm(arena.IntConst(3))});
  SymValue b = SymValue::Struct({SymValue::OfTerm(arena.IntConst(5)),
                                 SymValue::OfTerm(arena.IntConst(3))});
  Term eq = SymValueEqTerm(a, b, &arena);
  SolverSession solver(&arena);
  solver.Assert(eq);
  ASSERT_EQ(solver.Check(), SatResult::kSat);
  int64_t x = 0;
  EXPECT_TRUE(solver.GetModel().Get("x", &x));
  EXPECT_EQ(x, 5);
}

TEST_F(RefineTest, SymValueEqTermDifferentShapesIsFalse) {
  TermArena arena;
  SymValue a = SymValue::Struct({SymValue::OfTerm(arena.IntConst(1))});
  SymValue b = SymValue::OfTerm(arena.IntConst(1));
  EXPECT_EQ(SymValueEqTerm(a, b, &arena), arena.False());
}

}  // namespace
}  // namespace dnsv

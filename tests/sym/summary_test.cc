// Unit tests of the summarizer (paper §5.3): computed input-effect pairs,
// caching per concrete binding, application fidelity against inlining, panic
// entries, and the decline conditions for unsupported effect patterns.
#include "src/sym/summary.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"
#include "src/sym/refine.h"

namespace dnsv {
namespace {

class SummaryTest : public ::testing::Test {
 protected:
  void Compile(const std::string& source) {
    types_ = std::make_unique<TypeTable>();
    module_ = std::make_unique<Module>(types_.get());
    Result<CompileOutput> compiled = CompileMiniGo({{"test.mg", source}}, module_.get());
    ASSERT_TRUE(compiled.ok()) << compiled.error();
    arena_ = std::make_unique<TermArena>();
    solver_ = std::make_unique<SolverSession>(arena_.get());
  }

  // Summarizer over an empty shared heap unless one is provided.
  std::unique_ptr<Summarizer> MakeSummarizer(SymMemory heap = SymMemory(), int cap = 3,
                                             int64_t max_label = 1000) {
    return std::make_unique<Summarizer>(module_.get(), arena_.get(), solver_.get(),
                                        std::move(heap), cap, max_label);
  }

  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
  std::unique_ptr<TermArena> arena_;
  std::unique_ptr<SolverSession> solver_;
};

constexpr char kClassifySource[] = R"(
type Out struct {
  code int
  flag bool
}
func classify(x int, out *Out) {
  if x < 0 {
    out.code = 0
    return
  }
  if x < 10 {
    out.code = 1
    out.flag = true
    return
  }
  out.code = 2
}
// Summaries are applied at call sites; the driver provides one.
func classifyDriver(x int, out *Out) {
  classify(x, out)
}
)";

TEST_F(SummaryTest, ComputesOneEntryPerPath) {
  Compile(kClassifySource);
  auto summarizer = MakeSummarizer();
  summarizer->Configure({"classify", {ParamMode::kSymbolicInt, ParamMode::kOutStruct}});
  const FunctionSummary* summary =
      summarizer->GetOrCompute("classify", {SymValue::Unit(), SymValue::Unit()});
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->entries.size(), 3u);
  // Each entry writes `code`; the middle one also writes `flag`.
  int flag_writes = 0;
  for (const SummaryEntry& entry : summary->entries) {
    bool wrote_code = false;
    for (const auto& write : entry.writes) {
      wrote_code = wrote_code || write.field == 0;
      flag_writes += write.field == 1 ? 1 : 0;
    }
    EXPECT_TRUE(wrote_code);
  }
  EXPECT_EQ(flag_writes, 1);
}

TEST_F(SummaryTest, ApplicationMatchesInlining) {
  Compile(kClassifySource);
  auto summarizer = MakeSummarizer();
  summarizer->Configure({"classify", {ParamMode::kSymbolicInt, ParamMode::kOutStruct}});

  // Driver that calls classify; explore once with summaries and once inline,
  // and compare the reachable (pc, out.code) sets.
  auto explore = [&](bool use_summaries) {
    SymExecutor executor(module_.get(), arena_.get(), solver_.get());
    if (use_summaries) {
      executor.set_summary_provider(summarizer.get());
    }
    SymState state;
    state.pc = arena_->True();
    Type out_type = types_->StructType("Out");
    BlockIndex out_block =
        state.memory.Alloc(SymZeroValue(*types_, out_type, arena_.get()));
    SymbolicInt x = MakeSymbolicInt(arena_.get(), "x", -100, 100);
    state.pc = x.constraints;
    auto outcomes = executor.Explore(*module_->GetFunction("classifyDriver"),
                                     {x.value, SymValue::Ptr(out_block)}, state);
    // Collect (model of x -> final code) samples per path.
    std::vector<std::pair<int64_t, int64_t>> samples;
    for (const PathOutcome& outcome : outcomes) {
      EXPECT_EQ(outcome.kind, PathOutcome::Kind::kReturned);
      if (solver_->CheckAssuming(outcome.state.pc) != SatResult::kSat) {
        continue;
      }
      Model model = solver_->GetModel();
      const SymValue* code = outcome.state.memory.Resolve(out_block, {0});
      Value concrete = ConcretizeValue(*code, *arena_, &model);
      int64_t xv = 0;
      model.Get("x", &xv);
      samples.emplace_back(xv, concrete.i);
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };

  auto inline_samples = explore(false);
  auto summary_samples = explore(true);
  ASSERT_EQ(inline_samples.size(), 3u);
  ASSERT_EQ(summary_samples.size(), 3u);
  // The per-path witnesses must classify identically under both modes.
  for (const auto& [xv, code] : inline_samples) {
    int64_t expected = xv < 0 ? 0 : xv < 10 ? 1 : 2;
    EXPECT_EQ(code, expected);
  }
  for (const auto& [xv, code] : summary_samples) {
    int64_t expected = xv < 0 ? 0 : xv < 10 ? 1 : 2;
    EXPECT_EQ(code, expected);
  }
  EXPECT_GT(summarizer->stats().applications, 0);
}

TEST_F(SummaryTest, CachedPerConcreteBinding) {
  Compile(R"(
type Out struct { v int }
func scale(k int, x int, out *Out) {
  out.v = k * x
}
)");
  auto summarizer = MakeSummarizer();
  summarizer->Configure(
      {"scale", {ParamMode::kConcrete, ParamMode::kSymbolicInt, ParamMode::kOutStruct}});
  SymValue k2 = SymValue::OfTerm(arena_->IntConst(2));
  SymValue k3 = SymValue::OfTerm(arena_->IntConst(3));
  const FunctionSummary* s2 =
      summarizer->GetOrCompute("scale", {k2, SymValue::Unit(), SymValue::Unit()});
  const FunctionSummary* s2_again =
      summarizer->GetOrCompute("scale", {k2, SymValue::Unit(), SymValue::Unit()});
  const FunctionSummary* s3 =
      summarizer->GetOrCompute("scale", {k3, SymValue::Unit(), SymValue::Unit()});
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2, s2_again);  // cache hit
  EXPECT_NE(s2, s3);        // distinct concrete binding
  EXPECT_EQ(summarizer->stats().summaries_computed, 2);
  EXPECT_EQ(summarizer->stats().cache_hits, 1);
}

TEST_F(SummaryTest, PanicPathsBecomePanicEntries) {
  Compile(R"(
type Out struct { v int }
func risky(xs []int, i int, out *Out) {
  out.v = xs[i]
}
)");
  auto summarizer = MakeSummarizer();
  summarizer->Configure({"risky", {ParamMode::kSymbolicIntList, ParamMode::kSymbolicInt,
                                   ParamMode::kOutStruct}});
  const FunctionSummary* summary = summarizer->GetOrCompute(
      "risky", {SymValue::Unit(), SymValue::Unit(), SymValue::Unit()});
  ASSERT_NE(summary, nullptr);
  bool has_panic = false;
  bool has_return = false;
  for (const SummaryEntry& entry : summary->entries) {
    has_panic = has_panic || entry.panics;
    has_return = has_return || !entry.panics;
  }
  EXPECT_TRUE(has_panic);
  EXPECT_TRUE(has_return);
}

TEST_F(SummaryTest, ListAppendEffectCaptured) {
  Compile(R"(
type Out struct { xs []int }
func push2(a int, b int, out *Out) {
  out.xs = append(out.xs, a)
  out.xs = append(out.xs, b)
}
)");
  auto summarizer = MakeSummarizer();
  summarizer->Configure(
      {"push2", {ParamMode::kSymbolicInt, ParamMode::kSymbolicInt, ParamMode::kOutStruct}});
  const FunctionSummary* summary = summarizer->GetOrCompute(
      "push2", {SymValue::Unit(), SymValue::Unit(), SymValue::Unit()});
  ASSERT_NE(summary, nullptr);
  ASSERT_EQ(summary->entries.size(), 1u);
  ASSERT_EQ(summary->entries[0].writes.size(), 1u);
  const SymValue& list = summary->entries[0].writes[0].value;
  ASSERT_EQ(list.kind, SymValue::Kind::kList);
  EXPECT_EQ(list.elems.size(), 2u);
}

TEST_F(SummaryTest, DeclinesWhenReturnEscapesFreshAllocation) {
  Compile(R"(
type Out struct { v int }
func makeOut(x int) *Out {
  o := new(Out)
  o.v = x
  return o
}
)");
  auto summarizer = MakeSummarizer();
  summarizer->Configure({"makeOut", {ParamMode::kSymbolicInt}});
  EXPECT_EQ(summarizer->GetOrCompute("makeOut", {SymValue::Unit()}), nullptr);
  EXPECT_EQ(summarizer->stats().summaries_failed, 1);
}

TEST_F(SummaryTest, DeclinesOnSharedHeapWrite) {
  Compile(R"(
type Cell struct { v int }
func poke(c *Cell, x int) {
  c.v = x
}
)");
  // `c` bound concretely to a shared-heap block: writing it violates the
  // stateless assumption (paper §9).
  SymMemory heap;
  Type cell = types_->StructType("Cell");
  BlockIndex cell_block = heap.Alloc(SymZeroValue(*types_, cell, arena_.get()));
  auto summarizer = MakeSummarizer(heap);
  summarizer->Configure({"poke", {ParamMode::kConcrete, ParamMode::kSymbolicInt}});
  EXPECT_EQ(summarizer->GetOrCompute("poke", {SymValue::Ptr(cell_block), SymValue::Unit()}),
            nullptr);
}

TEST_F(SummaryTest, ApplyDeclinesWhenOutListNotEmpty) {
  Compile(R"(
type Out struct { xs []int }
func push(a int, out *Out) {
  out.xs = append(out.xs, a)
}
func driver(a int, out *Out) {
  push(a, out)
  push(a, out)
}
)");
  auto summarizer = MakeSummarizer();
  summarizer->Configure({"push", {ParamMode::kSymbolicInt, ParamMode::kOutStruct}});
  SymExecutor executor(module_.get(), arena_.get(), solver_.get());
  executor.set_summary_provider(summarizer.get());
  SymState state;
  state.pc = arena_->True();
  BlockIndex out_block =
      state.memory.Alloc(SymZeroValue(*types_, types_->StructType("Out"), arena_.get()));
  SymbolicInt a = MakeSymbolicInt(arena_.get(), "a", 0, 9);
  state.pc = a.constraints;
  // First push applies the summary (empty list); the second sees a non-empty
  // list, declines, and the executor inlines — final list must have BOTH
  // elements either way.
  auto outcomes = executor.Explore(*module_->GetFunction("driver"),
                                   {a.value, SymValue::Ptr(out_block)}, state);
  ASSERT_EQ(outcomes.size(), 1u);
  const SymValue* xs = outcomes[0].state.memory.Resolve(out_block, {0});
  ASSERT_NE(xs, nullptr);
  EXPECT_EQ(xs->elems.size(), 2u);
}

TEST_F(SummaryTest, UnconfiguredFunctionNotIntercepted) {
  Compile(kClassifySource);
  auto summarizer = MakeSummarizer();
  SymState state;
  state.pc = arena_->True();
  EXPECT_EQ(summarizer->TryApply("classify", {SymValue::Unit(), SymValue::Unit()}, state),
            std::nullopt);
}

}  // namespace
}  // namespace dnsv

// Symbolic executor tests: MiniGo source -> AbsIR -> full-path exploration.
#include "src/sym/executor.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"
#include "src/sym/refine.h"

namespace dnsv {
namespace {

class SymExecTest : public ::testing::Test {
 protected:
  void Compile(const std::string& source) {
    types_ = std::make_unique<TypeTable>();
    module_ = std::make_unique<Module>(types_.get());
    Result<CompileOutput> compiled = CompileMiniGo({{"test.mg", source}}, module_.get());
    ASSERT_TRUE(compiled.ok()) << compiled.error();
    arena_ = std::make_unique<TermArena>();
    solver_ = std::make_unique<SolverSession>(arena_.get());
    executor_ = std::make_unique<SymExecutor>(module_.get(), arena_.get(), solver_.get());
  }

  std::vector<PathOutcome> Explore(const std::string& fn, const std::vector<SymValue>& args,
                                   Term extra_constraint = Term()) {
    SymState state;
    state.pc = extra_constraint.valid() ? extra_constraint : arena_->True();
    return executor_->Explore(*module_->GetFunction(fn), args, state);
  }

  int CountPanics(const std::vector<PathOutcome>& outcomes) {
    int n = 0;
    for (const PathOutcome& o : outcomes) {
      if (o.kind == PathOutcome::Kind::kPanicked) {
        ++n;
      }
    }
    return n;
  }

  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
  std::unique_ptr<TermArena> arena_;
  std::unique_ptr<SolverSession> solver_;
  std::unique_ptr<SymExecutor> executor_;
};

TEST_F(SymExecTest, StraightLineSinglePath) {
  Compile("func f(x int) int { return x + 1 }");
  auto outcomes = Explore("f", {SymValue::OfTerm(arena_->Var("x", Sort::kInt))});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, PathOutcome::Kind::kReturned);
  EXPECT_EQ(arena_->ToString(outcomes[0].return_value.term), "(+ x 1)");
}

TEST_F(SymExecTest, SymbolicBranchForksTwoPaths) {
  Compile("func f(x int) int { if x > 0 { return 1 }\nreturn 2 }");
  auto outcomes = Explore("f", {SymValue::OfTerm(arena_->Var("x", Sort::kInt))});
  EXPECT_EQ(outcomes.size(), 2u);
}

TEST_F(SymExecTest, InfeasibleBranchPruned) {
  Compile(R"(
func f(x int) int {
  if x > 10 {
    if x < 5 {
      return 99
    }
    return 1
  }
  return 2
}
)");
  auto outcomes = Explore("f", {SymValue::OfTerm(arena_->Var("x", Sort::kInt))});
  // The x>10 && x<5 path is infeasible; only 2 paths remain.
  ASSERT_EQ(outcomes.size(), 2u);
  for (const PathOutcome& o : outcomes) {
    int64_t v = 0;
    if (arena_->AsIntConst(o.return_value.term, &v)) {
      EXPECT_NE(v, 99);
    }
  }
}

TEST_F(SymExecTest, ConcreteBranchNoFork) {
  Compile("func f() int { if 3 > 2 { return 1 }\nreturn 2 }");
  auto outcomes = Explore("f", {});
  ASSERT_EQ(outcomes.size(), 1u);
  int64_t v = 0;
  ASSERT_TRUE(arena_->AsIntConst(outcomes[0].return_value.term, &v));
  EXPECT_EQ(v, 1);
}

TEST_F(SymExecTest, LoopOverSymbolicLengthList) {
  Compile(R"(
func sum(xs []int) int {
  s := 0
  for i := 0; i < len(xs); i = i + 1 {
    s = s + xs[i]
  }
  return s
}
)");
  SymbolicIntList xs = MakeSymbolicIntList(arena_.get(), "xs", 3, 0, 100);
  auto outcomes = Explore("sum", {xs.value}, xs.constraints);
  // One path per possible length 0..3.
  EXPECT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(CountPanics(outcomes), 0);
}

TEST_F(SymExecTest, ReachablePanicReported) {
  Compile(R"(
func get(xs []int, i int) int {
  return xs[i]
}
)");
  SymbolicIntList xs = MakeSymbolicIntList(arena_.get(), "xs", 2, 0, 9);
  SymbolicInt i = MakeSymbolicInt(arena_.get(), "i", -10, 10);
  auto outcomes =
      Explore("get", {xs.value, i.value}, arena_->And(xs.constraints, i.constraints));
  // Paths: panic (i out of range), plus in-range reads.
  EXPECT_GE(CountPanics(outcomes), 1);
  bool found_read = false;
  for (const PathOutcome& o : outcomes) {
    found_read = found_read || o.kind == PathOutcome::Kind::kReturned;
  }
  EXPECT_TRUE(found_read);
}

TEST_F(SymExecTest, GuardedAccessHasNoPanicPath) {
  Compile(R"(
func get(xs []int, i int) int {
  if i >= 0 && i < len(xs) {
    return xs[i]
  }
  return -1
}
)");
  SymbolicIntList xs = MakeSymbolicIntList(arena_.get(), "xs", 2, 0, 9);
  SymbolicInt i = MakeSymbolicInt(arena_.get(), "i", -10, 10);
  auto outcomes =
      Explore("get", {xs.value, i.value}, arena_->And(xs.constraints, i.constraints));
  EXPECT_EQ(CountPanics(outcomes), 0);
}

TEST_F(SymExecTest, NilCheckPanicFeasibleOnlyForNull) {
  Compile(R"(
type T struct { x int }
func f(p *T) int { return p.x }
)");
  // Null argument: the only path is the panic.
  auto null_outcomes = Explore("f", {SymValue::NullPtr()});
  ASSERT_EQ(null_outcomes.size(), 1u);
  EXPECT_EQ(null_outcomes[0].kind, PathOutcome::Kind::kPanicked);
  // Valid pointer to a concrete block: single clean path.
  SymState state;
  state.pc = arena_->True();
  BlockIndex b = state.memory.Alloc(SymValue::Struct({SymValue::OfTerm(arena_->IntConst(5))}));
  auto outcomes = executor_->Explore(*module_->GetFunction("f"), {SymValue::Ptr(b)}, state);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, PathOutcome::Kind::kReturned);
}

TEST_F(SymExecTest, CallsAreInlined) {
  Compile(R"(
func abs(x int) int {
  if x < 0 {
    return 0 - x
  }
  return x
}
func f(a int, b int) int { return abs(a) + abs(b) }
)");
  auto outcomes = Explore("f", {SymValue::OfTerm(arena_->Var("a", Sort::kInt)),
                                SymValue::OfTerm(arena_->Var("b", Sort::kInt))});
  EXPECT_EQ(outcomes.size(), 4u);  // 2 x 2 paths
}

TEST_F(SymExecTest, MemoryEffectsVisibleInFinalState) {
  Compile(R"(
type R struct { code int }
func set(r *R, v int) { r.code = v * 2 }
)");
  SymState state;
  state.pc = arena_->True();
  BlockIndex b = state.memory.Alloc(SymValue::Struct({SymValue::OfTerm(arena_->IntConst(0))}));
  Term v = arena_->Var("v", Sort::kInt);
  auto outcomes = executor_->Explore(*module_->GetFunction("set"),
                                     {SymValue::Ptr(b), SymValue::OfTerm(v)}, state);
  ASSERT_EQ(outcomes.size(), 1u);
  const SymValue* field = outcomes[0].state.memory.Resolve(b, {0});
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(arena_->ToString(field->term), "(* v 2)");
}

TEST_F(SymExecTest, ShortCircuitPrunesRhsEvaluation) {
  Compile(R"(
func f(x int) int {
  if x != 0 && 10/x > 1 {
    return 1
  }
  return 0
}
)");
  SymbolicInt x = MakeSymbolicInt(arena_.get(), "x", -100, 100);
  auto outcomes = Explore("f", {x.value}, x.constraints);
  // No division-by-zero panic is feasible (guard short-circuits).
  EXPECT_EQ(CountPanics(outcomes), 0);
}

TEST_F(SymExecTest, ListEqBuiltinSymbolic) {
  Compile("func f(a []int, b []int) bool { return listEq(a, b) }");
  SymbolicIntList a = MakeSymbolicIntList(arena_.get(), "a", 2, 0, 9);
  SymbolicIntList b = MakeSymbolicIntList(arena_.get(), "b", 2, 0, 9);
  auto outcomes = Explore("f", {a.value, b.value}, arena_->And(a.constraints, b.constraints));
  ASSERT_EQ(outcomes.size(), 1u);
  Term eq = outcomes[0].return_value.term;
  // eq must be satisfiable both ways.
  EXPECT_EQ(solver_->CheckAssuming(eq), SatResult::kSat);
  EXPECT_EQ(solver_->CheckAssuming(arena_->Not(eq)), SatResult::kSat);
  // And equal lengths+elements forces true.
  Term forced = arena_->AndN(
      {arena_->Eq(a.value.list_len, arena_->IntConst(1)),
       arena_->Eq(b.value.list_len, arena_->IntConst(1)),
       arena_->Eq(a.value.elems[0].term, arena_->IntConst(5)),
       arena_->Eq(b.value.elems[0].term, arena_->IntConst(5)), arena_->Not(eq)});
  EXPECT_EQ(solver_->CheckAssuming(forced), SatResult::kUnsat);
}

TEST_F(SymExecTest, AppendToSymbolicLengthListRejected) {
  Compile("func f(xs []int) []int { return append(xs, 1) }");
  SymbolicIntList xs = MakeSymbolicIntList(arena_.get(), "xs", 2, 0, 9);
  EXPECT_THROW(Explore("f", {xs.value}, xs.constraints), DnsvError);
}

TEST_F(SymExecTest, PathConditionsArePairwiseDisjoint) {
  Compile(R"(
func classify(x int) int {
  if x < 0 {
    return 0
  }
  if x == 0 {
    return 1
  }
  if x < 10 {
    return 2
  }
  return 3
}
)");
  SymbolicInt x = MakeSymbolicInt(arena_.get(), "x", -100, 100);
  auto outcomes = Explore("classify", {x.value}, x.constraints);
  ASSERT_EQ(outcomes.size(), 4u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    for (size_t j = i + 1; j < outcomes.size(); ++j) {
      Term both = arena_->And(outcomes[i].state.pc, outcomes[j].state.pc);
      EXPECT_EQ(solver_->CheckAssuming(both), SatResult::kUnsat)
          << "paths " << i << " and " << j << " overlap";
    }
  }
}

TEST_F(SymExecTest, PathCoverageIsExhaustive) {
  Compile(R"(
func f(x int) int {
  if x % 2 == 0 {
    return 0
  }
  return 1
}
)");
  SymbolicInt x = MakeSymbolicInt(arena_.get(), "x", 0, 50);
  auto outcomes = Explore("f", {x.value}, x.constraints);
  // The disjunction of path conditions must cover the input constraint.
  std::vector<Term> pcs;
  for (const PathOutcome& o : outcomes) {
    pcs.push_back(o.state.pc);
  }
  Term covered = arena_->OrN(pcs);
  Term uncovered = arena_->And(x.constraints, arena_->Not(covered));
  EXPECT_EQ(solver_->CheckAssuming(uncovered), SatResult::kUnsat);
}

}  // namespace
}  // namespace dnsv

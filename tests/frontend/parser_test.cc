#include "src/frontend/parser.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

ProgramAst MustParse(const std::string& source) {
  Result<ProgramAst> result = ParseMiniGo(source, "test.mg");
  EXPECT_TRUE(result.ok()) << result.error();
  return std::move(result).value();
}

std::string ParseError(const std::string& source) {
  Result<ProgramAst> result = ParseMiniGo(source, "test.mg");
  EXPECT_FALSE(result.ok());
  return result.ok() ? "" : result.error();
}

TEST(Parser, StructDecl) {
  ProgramAst p = MustParse(R"(
type TreeNode struct {
  label int
  left *TreeNode
  right *TreeNode
  down *TreeNode
  rrsets []RRSet
}
)");
  ASSERT_EQ(p.structs.size(), 1u);
  EXPECT_EQ(p.structs[0].name, "TreeNode");
  ASSERT_EQ(p.structs[0].fields.size(), 5u);
  EXPECT_EQ(p.structs[0].fields[1].type->kind, TypeExpr::Kind::kPtr);
  EXPECT_EQ(p.structs[0].fields[4].type->kind, TypeExpr::Kind::kList);
}

TEST(Parser, ConstDecl) {
  ProgramAst p = MustParse("const NOMATCH = 0\nconst NEG = -5\n");
  ASSERT_EQ(p.consts.size(), 2u);
  EXPECT_EQ(p.consts[0].name, "NOMATCH");
  EXPECT_EQ(p.consts[0].value, 0);
  EXPECT_EQ(p.consts[1].value, -5);
}

TEST(Parser, FuncWithParamsAndReturn) {
  ProgramAst p = MustParse("func compare(a []int, b []int) int { return 0 }");
  ASSERT_EQ(p.funcs.size(), 1u);
  EXPECT_EQ(p.funcs[0].name, "compare");
  EXPECT_EQ(p.funcs[0].params.size(), 2u);
  ASSERT_NE(p.funcs[0].return_type, nullptr);
  EXPECT_EQ(p.funcs[0].return_type->name, "int");
}

TEST(Parser, VoidFunc) {
  ProgramAst p = MustParse("func f() { }");
  EXPECT_EQ(p.funcs[0].return_type, nullptr);
}

TEST(Parser, IfElseChain) {
  ProgramAst p = MustParse(R"(
func f(x int) int {
  if x == 0 {
    return 1
  } else if x == 1 {
    return 2
  } else {
    return 3
  }
}
)");
  const Stmt& if_stmt = *p.funcs[0].body[0];
  EXPECT_EQ(if_stmt.kind, Stmt::Kind::kIf);
  ASSERT_EQ(if_stmt.else_body.size(), 1u);
  EXPECT_EQ(if_stmt.else_body[0]->kind, Stmt::Kind::kIf);
}

TEST(Parser, ThreePartFor) {
  ProgramAst p = MustParse(R"(
func f(n int) int {
  s := 0
  for i := 0; i < n; i = i + 1 {
    s = s + i
  }
  return s
}
)");
  const Stmt& loop = *p.funcs[0].body[1];
  EXPECT_EQ(loop.kind, Stmt::Kind::kFor);
  EXPECT_NE(loop.for_init, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_NE(loop.for_post, nullptr);
}

TEST(Parser, ConditionOnlyFor) {
  ProgramAst p = MustParse("func f(n int) { for n > 0 { n = n - 1 } }");
  const Stmt& loop = *p.funcs[0].body[0];
  EXPECT_EQ(loop.for_init, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_EQ(loop.for_post, nullptr);
}

TEST(Parser, InfiniteFor) {
  ProgramAst p = MustParse("func f() { for { break } }");
  const Stmt& loop = *p.funcs[0].body[0];
  EXPECT_EQ(loop.cond, nullptr);
  EXPECT_EQ(loop.body[0]->kind, Stmt::Kind::kBreak);
}

TEST(Parser, PrecedenceAndAssociativity) {
  ProgramAst p = MustParse("func f(a int, b int, c int) bool { return a + b * c == a && true }");
  // ((a + (b*c)) == a) && true
  const Expr& root = *p.funcs[0].body[0]->init;
  EXPECT_EQ(root.op, Tok::kAndAnd);
  EXPECT_EQ(root.lhs->op, Tok::kEq);
  EXPECT_EQ(root.lhs->lhs->op, Tok::kPlus);
  EXPECT_EQ(root.lhs->lhs->rhs->op, Tok::kStar);
}

TEST(Parser, FieldIndexCallChains) {
  ProgramAst p = MustParse("func f(n *TreeNode) int { return n.rrsets[0].rtype }");
  const Expr& e = *p.funcs[0].body[0]->init;
  EXPECT_EQ(e.kind, Expr::Kind::kField);
  EXPECT_EQ(e.name, "rtype");
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kIndex);
  EXPECT_EQ(e.lhs->lhs->kind, Expr::Kind::kField);
}

TEST(Parser, NewAndMake) {
  ProgramAst p = MustParse("func f() { r := new(Response)\n l := make([]int)\n l2 := make([]int, 0) }");
  EXPECT_EQ(p.funcs[0].body[0]->init->kind, Expr::Kind::kNew);
  EXPECT_EQ(p.funcs[0].body[1]->init->kind, Expr::Kind::kMake);
  EXPECT_EQ(p.funcs[0].body[2]->init->kind, Expr::Kind::kMake);
}

TEST(Parser, PanicStatement) {
  ProgramAst p = MustParse("func f() { panic(\"unreachable\") }");
  EXPECT_EQ(p.funcs[0].body[0]->kind, Stmt::Kind::kPanic);
  EXPECT_EQ(p.funcs[0].body[0]->text, "unreachable");
}

TEST(Parser, IndexAssignment) {
  ProgramAst p = MustParse("func f(s []int, i int, v int) { s[i] = v }");
  const Stmt& assign = *p.funcs[0].body[0];
  EXPECT_EQ(assign.kind, Stmt::Kind::kAssign);
  EXPECT_EQ(assign.lhs->kind, Expr::Kind::kIndex);
}

TEST(Parser, RejectsAddressOf) {
  std::string err = ParseError("func f() { x := &y }");
  EXPECT_NE(err.find("address-of"), std::string::npos);
}

TEST(Parser, RejectsDeref) {
  std::string err = ParseError("func f(p *T) int { return *p }");
  EXPECT_NE(err.find("dereference"), std::string::npos);
}

TEST(Parser, RejectsColonEqOnField) {
  std::string err = ParseError("func f(p *T) { p.x := 1 }");
  EXPECT_NE(err.find("identifier"), std::string::npos);
}

TEST(Parser, RejectsMakeWithNonZeroLength) {
  std::string err = ParseError("func f() { l := make([]int, 3) }");
  EXPECT_NE(err.find("n == 0"), std::string::npos);
}

TEST(Parser, ErrorHasPosition) {
  std::string err = ParseError("func f( {");
  EXPECT_NE(err.find("test.mg:1:"), std::string::npos);
}

TEST(Parser, MultipleSourcesShareOnePackage) {
  Result<ProgramAst> result = ParseMiniGoSources({
      {"a.mg", "const A = 1\n"},
      {"b.mg", "func useA() int { return A }"},
  });
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().consts.size(), 1u);
  EXPECT_EQ(result.value().funcs.size(), 1u);
}

}  // namespace
}  // namespace dnsv

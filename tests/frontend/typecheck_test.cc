#include "src/frontend/typecheck.h"

#include <gtest/gtest.h>

#include "src/frontend/parser.h"

namespace dnsv {
namespace {

Result<CheckedProgram> Check(const std::string& source, TypeTable* types) {
  Result<ProgramAst> ast = ParseMiniGo(source, "test.mg");
  EXPECT_TRUE(ast.ok()) << ast.error();
  static std::vector<ProgramAst>* keep_alive = new std::vector<ProgramAst>();
  keep_alive->push_back(std::move(ast).value());
  return TypecheckMiniGo(&keep_alive->back(), types);
}

std::string CheckError(const std::string& source) {
  TypeTable types;
  Result<CheckedProgram> result = Check(source, &types);
  EXPECT_FALSE(result.ok()) << "expected a type error";
  return result.ok() ? "" : result.error();
}

void CheckOk(const std::string& source) {
  TypeTable types;
  Result<CheckedProgram> result = Check(source, &types);
  EXPECT_TRUE(result.ok()) << result.error();
}

TEST(Typecheck, SimpleFunctionOk) {
  CheckOk("func add(a int, b int) int { return a + b }");
}

TEST(Typecheck, StructAndFieldAccess) {
  CheckOk(R"(
type RR struct {
  rtype int
  rname []int
}
func getType(rr *RR) int { return rr.rtype }
)");
}

TEST(Typecheck, CircularStructThroughPointerOk) {
  CheckOk(R"(
type TreeNode struct {
  label int
  down *TreeNode
}
func down(n *TreeNode) *TreeNode { return n.down }
)");
}

TEST(Typecheck, RejectsStructByValueCycle) {
  std::string err = CheckError("type A struct { b B }\ntype B struct { a A }\n");
  EXPECT_NE(err.find("by value"), std::string::npos);
}

TEST(Typecheck, RejectsUnknownType) {
  std::string err = CheckError("func f(x Unknown) { }");
  EXPECT_NE(err.find("unknown type"), std::string::npos);
}

TEST(Typecheck, RejectsUndefinedVariable) {
  std::string err = CheckError("func f() int { return missing }");
  EXPECT_NE(err.find("undefined variable"), std::string::npos);
}

TEST(Typecheck, RejectsTypeMismatchAssign) {
  std::string err = CheckError("func f() { var x int = true }");
  EXPECT_NE(err.find("type mismatch"), std::string::npos);
}

TEST(Typecheck, RejectsBoolArithmetic) {
  std::string err = CheckError("func f(a bool) bool { return a + a }");
  EXPECT_NE(err.find("arithmetic requires int"), std::string::npos);
}

TEST(Typecheck, RejectsIntCondition) {
  std::string err = CheckError("func f(x int) { if x { } }");
  EXPECT_NE(err.find("must be bool"), std::string::npos);
}

TEST(Typecheck, NilOnlyForPointers) {
  CheckOk(R"(
type T struct { x int }
func f(p *T) bool { return p == nil }
)");
  std::string err = CheckError("func f(x int) bool { return x == nil }");
  EXPECT_NE(err.find("pointer"), std::string::npos);
}

TEST(Typecheck, NilAssignmentAdoptsPointerType) {
  CheckOk(R"(
type T struct { x int }
func f() *T {
  var p *T
  p = nil
  return p
}
)");
}

TEST(Typecheck, RejectsNilInference) {
  std::string err = CheckError("func f() { p := nil }");
  EXPECT_NE(err.find("infer"), std::string::npos);
}

TEST(Typecheck, ConstResolvesAsInt) {
  CheckOk("const K = 7\nfunc f() int { return K + 1 }");
}

TEST(Typecheck, RejectsAssignToConst) {
  std::string err = CheckError("const K = 7\nfunc f() { K = 8 }");
  EXPECT_NE(err.find("constant"), std::string::npos);
}

TEST(Typecheck, BuiltinLenAppend) {
  CheckOk(R"(
func f(s []int) []int {
  if len(s) > 0 {
    s = append(s, 1)
  }
  return s
}
)");
}

TEST(Typecheck, RejectsAppendTypeMismatch) {
  std::string err = CheckError("func f(s []int) []int { return append(s, true) }");
  EXPECT_NE(err.find("element type"), std::string::npos);
}

TEST(Typecheck, RejectsLenOnInt) {
  std::string err = CheckError("func f(x int) int { return len(x) }");
  EXPECT_NE(err.find("requires a slice"), std::string::npos);
}

TEST(Typecheck, ListEqBuiltin) {
  CheckOk("func f(a []int, b []int) bool { return listEq(a, b) }");
  std::string err = CheckError("func f(a []int, b []bool) bool { return listEq(a, b) }");
  EXPECT_NE(err.find("same type"), std::string::npos);
}

TEST(Typecheck, RejectsSliceEqualityOperator) {
  std::string err = CheckError("func f(a []int, b []int) bool { return a == b }");
  EXPECT_NE(err.find("listEq"), std::string::npos);
}

TEST(Typecheck, CallChecksArityAndTypes) {
  std::string err = CheckError(R"(
func g(x int) int { return x }
func f() int { return g(1, 2) }
)");
  EXPECT_NE(err.find("expects 1"), std::string::npos);
  err = CheckError(R"(
func g(x int) int { return x }
func f() int { return g(true) }
)");
  EXPECT_NE(err.find("expected int"), std::string::npos);
}

TEST(Typecheck, RejectsBreakOutsideLoop) {
  std::string err = CheckError("func f() { break }");
  EXPECT_NE(err.find("outside a loop"), std::string::npos);
}

TEST(Typecheck, RejectsRedeclarationInSameScope) {
  std::string err = CheckError("func f() { x := 1\nx := 2 }");
  EXPECT_NE(err.find("redeclared"), std::string::npos);
}

TEST(Typecheck, ShadowingInNestedScopeOk) {
  CheckOk("func f() int { x := 1\nif true { x := 2\nx = x + 1 }\nreturn x }");
}

TEST(Typecheck, RejectsVoidValueUse) {
  std::string err = CheckError(R"(
func g() { }
func f() { x := g() }
)");
  EXPECT_NE(err.find("void"), std::string::npos);
}

TEST(Typecheck, RejectsRedefiningBuiltin) {
  std::string err = CheckError("func len(s []int) int { return 0 }");
  EXPECT_NE(err.find("builtin"), std::string::npos);
}

TEST(Typecheck, ForLoopInitScope) {
  CheckOk(R"(
func f(n int) int {
  s := 0
  for i := 0; i < n; i = i + 1 {
    s = s + i
  }
  for i := 0; i < n; i = i + 1 {
    s = s - i
  }
  return s
}
)");
}

TEST(Typecheck, AutoDerefAnnotation) {
  TypeTable types;
  Result<ProgramAst> ast = ParseMiniGo(R"(
type T struct { x int }
func f(p *T, v T) int { return p.x + v.x }
)", "t.mg");
  ASSERT_TRUE(ast.ok());
  ProgramAst program = std::move(ast).value();
  Result<CheckedProgram> checked = TypecheckMiniGo(&program, &types);
  ASSERT_TRUE(checked.ok()) << checked.error();
  const Expr& sum = *program.funcs[0].body[0]->init;
  EXPECT_TRUE(sum.lhs->base_needs_deref);   // p.x
  EXPECT_FALSE(sum.rhs->base_needs_deref);  // v.x
}

}  // namespace
}  // namespace dnsv

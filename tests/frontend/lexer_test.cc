#include "src/frontend/lexer.h"

#include <gtest/gtest.h>

namespace dnsv {
namespace {

std::vector<Tok> Kinds(const std::string& source) {
  Result<std::vector<Token>> result = LexMiniGo(source, "test.mg");
  EXPECT_TRUE(result.ok()) << result.error();
  std::vector<Tok> kinds;
  for (const Token& tok : result.value()) {
    kinds.push_back(tok.kind);
  }
  return kinds;
}

TEST(Lexer, KeywordsAndIdents) {
  auto kinds = Kinds("func foo var x");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kFunc, Tok::kIdent, Tok::kVar, Tok::kIdent,
                                     Tok::kSemi, Tok::kEof}));
}

TEST(Lexer, AutomaticSemicolonAfterIdent) {
  auto kinds = Kinds("x := 1\ny := 2\n");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kIdent, Tok::kColonEq, Tok::kIntLit, Tok::kSemi,
                                     Tok::kIdent, Tok::kColonEq, Tok::kIntLit, Tok::kSemi,
                                     Tok::kEof}));
}

TEST(Lexer, NoSemicolonAfterOperator) {
  auto kinds = Kinds("x +\n1");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kIdent, Tok::kPlus, Tok::kIntLit, Tok::kSemi,
                                     Tok::kEof}));
}

TEST(Lexer, SemicolonAfterClosingBrace) {
  auto kinds = Kinds("if x { y }\nz");
  // '}' triggers ASI at the newline; there is no implicit ';' inside the
  // one-line block (the parser accepts a final statement without one).
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kIf, Tok::kIdent, Tok::kLBrace, Tok::kIdent,
                                     Tok::kRBrace, Tok::kSemi, Tok::kIdent, Tok::kSemi,
                                     Tok::kEof}));
}

TEST(Lexer, TwoCharOperators) {
  auto kinds = Kinds("a == b != c <= d >= e && f || g");
  EXPECT_EQ(kinds[1], Tok::kEq);
  EXPECT_EQ(kinds[3], Tok::kNe);
  EXPECT_EQ(kinds[5], Tok::kLe);
  EXPECT_EQ(kinds[7], Tok::kGe);
  EXPECT_EQ(kinds[9], Tok::kAndAnd);
  EXPECT_EQ(kinds[11], Tok::kOrOr);
}

TEST(Lexer, CommentsSkipped) {
  auto kinds = Kinds("x // trailing comment\n/* block\ncomment */ y");
  EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kIdent, Tok::kSemi, Tok::kIdent, Tok::kSemi,
                                     Tok::kEof}));
}

TEST(Lexer, IntLiteralValue) {
  Result<std::vector<Token>> result = LexMiniGo("12345", "t.mg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()[0].int_value, 12345);
}

TEST(Lexer, StringLiteralForPanic) {
  Result<std::vector<Token>> result = LexMiniGo("panic(\"boom\")", "t.mg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()[0].kind, Tok::kPanicKw);
  EXPECT_EQ(result.value()[2].kind, Tok::kStringLit);
  EXPECT_EQ(result.value()[2].text, "boom");
}

TEST(Lexer, LineAndColumnTracking) {
  Result<std::vector<Token>> result = LexMiniGo("x\n  y", "t.mg");
  ASSERT_TRUE(result.ok());
  const auto& tokens = result.value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  // tokens[1] is the inserted semicolon.
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  Result<std::vector<Token>> result = LexMiniGo("/* never ends", "t.mg");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unterminated"), std::string::npos);
}

TEST(Lexer, RejectsStrayCharacter) {
  Result<std::vector<Token>> result = LexMiniGo("x @ y", "t.mg");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unexpected character"), std::string::npos);
}

TEST(Lexer, RejectsBitwiseOr) {
  Result<std::vector<Token>> result = LexMiniGo("a | b", "t.mg");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dnsv

#include "src/frontend/lower.h"

#include <gtest/gtest.h>

#include "src/frontend/frontend.h"
#include "src/ir/printer.h"
#include "src/ir/validate.h"

namespace dnsv {
namespace {

// Compiles and returns the printed IR of `func_name`; the module must
// validate (CompileMiniGo validates internally).
std::string CompileAndPrint(const std::string& source, const std::string& func_name,
                            TypeTable* types, Module* module) {
  Result<CompileOutput> result = CompileMiniGo({{"test.mg", source}}, module);
  EXPECT_TRUE(result.ok()) << result.error();
  Function* fn = module->GetFunction(func_name);
  EXPECT_NE(fn, nullptr);
  return PrintFunction(*module, *fn);
}

TEST(Lower, StraightLine) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func add(a int, b int) int { return a + b }", "add",
                                   &types, &module);
  EXPECT_NE(ir.find("add"), std::string::npos);
  EXPECT_NE(ir.find("ret"), std::string::npos);
}

TEST(Lower, ParamsAreSpilled) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func f(a int) int { a = a + 1\nreturn a }", "f",
                                   &types, &module);
  EXPECT_NE(ir.find("alloca int"), std::string::npos);
  EXPECT_NE(ir.find("store"), std::string::npos);
}

TEST(Lower, IndexInsertsBoundsCheckPanicBlock) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func f(s []int, i int) int { return s[i] }", "f",
                                   &types, &module);
  EXPECT_NE(ir.find("panic \"index out of range\""), std::string::npos);
  EXPECT_NE(ir.find("[panic]"), std::string::npos);
}

TEST(Lower, PointerFieldInsertsNilCheck) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(
      "type T struct { x int }\nfunc f(p *T) int { return p.x }", "f", &types, &module);
  EXPECT_NE(ir.find("panic \"nil pointer dereference\""), std::string::npos);
  EXPECT_NE(ir.find("ptreq"), std::string::npos);
}

TEST(Lower, DivisionInsertsZeroCheck) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func f(a int, b int) int { return a / b }", "f",
                                   &types, &module);
  EXPECT_NE(ir.find("panic \"integer divide by zero\""), std::string::npos);
}

TEST(Lower, MissingReturnBecomesTrap) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func f(x int) int { if x > 0 { return 1 } }", "f",
                                   &types, &module);
  EXPECT_NE(ir.find("panic \"missing return\""), std::string::npos);
}

TEST(Lower, VoidFallthroughReturns) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint("func f(x int) { x = x + 1 }", "f", &types, &module);
  EXPECT_NE(ir.find("ret"), std::string::npos);
  EXPECT_EQ(ir.find("missing return"), std::string::npos);
}

TEST(Lower, ShortCircuitCreatesBranches) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(
      "func f(a bool, b bool) bool { return a && b }", "f", &types, &module);
  EXPECT_NE(ir.find("sc.rhs"), std::string::npos);
  EXPECT_NE(ir.find("sc.merge"), std::string::npos);
}

TEST(Lower, LoopStructure) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
func sum(n int) int {
  s := 0
  for i := 0; i < n; i = i + 1 {
    s = s + i
  }
  return s
}
)", "sum", &types, &module);
  EXPECT_NE(ir.find("for.cond"), std::string::npos);
  EXPECT_NE(ir.find("for.body"), std::string::npos);
  EXPECT_NE(ir.find("for.exit"), std::string::npos);
}

TEST(Lower, BreakContinueTargets) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
func f(n int) int {
  s := 0
  for i := 0; i < n; i = i + 1 {
    if i == 3 {
      continue
    }
    if i == 7 {
      break
    }
    s = s + i
  }
  return s
}
)", "f", &types, &module);
  EXPECT_TRUE(ValidateModule(module).ok());
}

TEST(Lower, DeadCodeAfterReturnStillValidates) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(
      "func f() int { return 1\nreturn 2 }", "f", &types, &module);
  EXPECT_NE(ir.find("dead."), std::string::npos);
}

TEST(Lower, ZeroValueInitialization) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
type P struct { x int; alive bool }
type T struct { p P; next *T; labels []int }
func f() int {
  var t T
  if t.next == nil {
    return len(t.labels)
  }
  return t.p.x
}
)", "f", &types, &module);
  EXPECT_NE(ir.find("listnew"), std::string::npos);  // empty slice zero value
}

TEST(Lower, NewObjectAndFieldStore) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
type Response struct { rcode int; answers []int }
func fresh(code int) *Response {
  r := new(Response)
  r.rcode = code
  r.answers = append(r.answers, 1)
  return r
}
)", "fresh", &types, &module);
  EXPECT_NE(ir.find("newobject Response"), std::string::npos);
  EXPECT_NE(ir.find("listappend"), std::string::npos);
}

TEST(Lower, FieldGetOnRvalueStruct) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
type RR struct { rtype int }
func pick(rrs []RR, i int) RR { return rrs[i] }
func f(rrs []RR, i int) int { return pick(rrs, i).rtype }
)", "f", &types, &module);
  // `pick(...)` is a struct rvalue, so the field read uses fieldget rather
  // than a memory round-trip.
  EXPECT_NE(ir.find("fieldget"), std::string::npos);
}

TEST(Lower, IndexAssignmentThroughGep) {
  TypeTable types;
  Module module(&types);
  std::string ir = CompileAndPrint(R"(
type Stack struct { data []int; level int }
func push(s *Stack, v int) {
  s.data[s.level] = v
  s.level = s.level + 1
}
)", "push", &types, &module);
  // Gep through the pointer, then through the list — the paper's
  // "store to a particular index then increment" pattern (§5.3).
  EXPECT_NE(ir.find("gep"), std::string::npos);
  EXPECT_TRUE(ValidateModule(module).ok());
}

}  // namespace
}  // namespace dnsv

#!/usr/bin/env bash
# CI gate: tier-1 test suite in the normal configuration, then again under
# AddressSanitizer + UndefinedBehaviorSanitizer (DNSV_SANITIZE), then a
# ThreadSanitizer build (DNSV_TSAN — TSan cannot share a binary with ASan)
# driving the threaded serving shell: the tests/server/ loopback suite plus
# the multi-worker throughput smoke, where the epoll workers, per-worker
# stats, and snapshot swaps actually race if they are going to.
#
#   $ ci/check.sh            # all passes
#   $ ci/check.sh --fast     # normal pass only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_pass() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  # Stale-cache gate: the pipeline tests again with the full solver stack
  # (query cache + interval pre-solver) forced on and every cached/presolved
  # verdict re-checked against Z3 — any disagreement crashes the test
  # (docs/SMT.md). Covers the verification pipeline end to end.
  DNSV_SOLVER_FORCE=shadow ctest --test-dir "$build_dir" --output-on-failure \
    -j "$jobs" -R 'Pipeline|Verify|SolverStack'
  # MiniGo lint gate: the embedded engine sources must stay diagnostic-free.
  "$build_dir"/tools/dnsv-lint --werror
  # Wire fuzz gate (docs/WIRE.md): fixed-seed round-trip + engine-vs-spec
  # differential + interp-vs-compiled backend differential (docs/BACKEND.md)
  # over all six engine versions. Running it inside run_pass means the second
  # invocation executes the whole harness — AOT-generated code included —
  # under ASan/UBSan, which is where the no-crash/no-hang invariant is
  # actually enforced.
  "$build_dir"/tools/dnsv-fuzz --smoke
  # Serving-shell gate (docs/SERVER.md): a short loopback UDP throughput run
  # at 1 worker vs N workers. Emits BENCH_server.json with the single- vs
  # multi-worker queries/sec; under the sanitized pass this doubles as a race
  # check on the epoll workers, the stats blocks, and the snapshot swap.
  "$build_dir"/bench/server_throughput --smoke
  # Incremental-verification gate (docs/INCREMENTAL.md): cold-verify into a
  # fresh store, then re-verify warm. The harness exits non-zero unless every
  # warm run replays byte-identically with zero new Z3 checks and >=95% layer
  # reuse, and the edited-version scenario recomputes only the dirty cone.
  # Inside run_pass the whole store stack — container parsing, tamper
  # rejection, report codec — also executes under ASan/UBSan in pass 2 (the
  # tests/store/ suite, tamper tests included, runs in the ctest line above).
  "$build_dir"/bench/incremental_verify --smoke
}

echo "=== pass 1: normal build + ctest ==="
run_pass build

# Prune-ablation gate: over all six engine versions, the interprocedural
# analysis suite must discharge at least as many panic guards as the PR-2
# baseline pruner and never leave more solver checks, with byte-identical
# verdicts in all three modes (off / baseline / interproc). The harness
# itself asserts all of that and exits non-zero on any regression; it also
# refreshes BENCH_prune.json with one record per (version, analysis) pair.
build/bench/prune_ablation

# Store-binding gate: the DNSV_STORE_DIR environment path, twice against a
# fresh store. The second run must be served from the store (replayed) with
# every layer reused — the operator-visible form of the incremental_verify
# assertions above.
store_dir=$(mktemp -d)
DNSV_STORE_DIR="$store_dir" build/examples/verify_zone golden > /dev/null
warm_out=$(DNSV_STORE_DIR="$store_dir" build/examples/verify_zone golden)
rm -rf "$store_dir"
grep -q "incremental: replayed" <<<"$warm_out"
grep -Eq "layers ([0-9]+)/\1 reused" <<<"$warm_out"

if [[ "${1:-}" == "--fast" ]]; then
  echo "=== --fast: skipping sanitizer pass ==="
  exit 0
fi

echo "=== pass 2: DNSV_SANITIZE=address,undefined build + ctest ==="
# halt_on_error: fail the test on the first UBSan report instead of printing
# and continuing; detect_leaks stays on (the engine cache is reachable at
# exit, so it does not trip LeakSanitizer).
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
run_pass build-asan -DDNSV_SANITIZE=address,undefined

echo "=== pass 3: DNSV_TSAN=ON build + threaded server suite ==="
# halt_on_error: a single race report fails the run. second_deadlock_stack
# makes lock-order reports actionable. The pass is scoped to the threaded
# serving shell — TSan slows Z3-heavy verification tests by an order of
# magnitude for no additional coverage (the explore workers share no state
# by construction, and the ASan pass already runs them threaded).
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
cmake -B build-tsan -S . -DDNSV_TSAN=ON
cmake --build build-tsan -j "$jobs" --target server_test server_throughput
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
  -R 'DnsServerTest|ServerStatsTest|ServePacketTest|CacheKey|PacketCacheTest|CachedServeTest|CacheDifferentialTest|DnsServerCacheTest|MinimumResponseTtl'
build-tsan/bench/server_throughput --smoke

echo "=== all checks passed ==="

#!/usr/bin/env bash
# CI gate: tier-1 test suite in the normal configuration, then again under
# AddressSanitizer + UndefinedBehaviorSanitizer (DNSV_SANITIZE). The sanitized
# pass exists mainly for the concurrent exploration workers: data races on a
# TermArena or a Z3 context show up as ASan/UBSan reports long before they
# show up as wrong verdicts.
#
#   $ ci/check.sh            # both passes
#   $ ci/check.sh --fast     # normal pass only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

run_pass() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  # Stale-cache gate: the pipeline tests again with the full solver stack
  # (query cache + interval pre-solver) forced on and every cached/presolved
  # verdict re-checked against Z3 — any disagreement crashes the test
  # (docs/SMT.md). Covers the verification pipeline end to end.
  DNSV_SOLVER_FORCE=shadow ctest --test-dir "$build_dir" --output-on-failure \
    -j "$jobs" -R 'Pipeline|Verify|SolverStack'
  # MiniGo lint gate: the embedded engine sources must stay diagnostic-free.
  "$build_dir"/tools/dnsv-lint --werror
  # Wire fuzz gate (docs/WIRE.md): fixed-seed round-trip + engine-vs-spec
  # differential + interp-vs-compiled backend differential (docs/BACKEND.md)
  # over all six engine versions. Running it inside run_pass means the second
  # invocation executes the whole harness — AOT-generated code included —
  # under ASan/UBSan, which is where the no-crash/no-hang invariant is
  # actually enforced.
  "$build_dir"/tools/dnsv-fuzz --smoke
  # Serving-shell gate (docs/SERVER.md): a short loopback UDP throughput run
  # at 1 worker vs N workers. Emits BENCH_server.json with the single- vs
  # multi-worker queries/sec; under the sanitized pass this doubles as a race
  # check on the epoll workers, the stats blocks, and the snapshot swap.
  "$build_dir"/bench/server_throughput --smoke
}

echo "=== pass 1: normal build + ctest ==="
run_pass build

if [[ "${1:-}" == "--fast" ]]; then
  echo "=== --fast: skipping sanitizer pass ==="
  exit 0
fi

echo "=== pass 2: DNSV_SANITIZE=address,undefined build + ctest ==="
# halt_on_error: fail the test on the first UBSan report instead of printing
# and continuing; detect_leaks stays on (the engine cache is reachable at
# exit, so it does not trip LeakSanitizer).
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
run_pass build-asan -DDNSV_SANITIZE=address,undefined

echo "=== all checks passed ==="

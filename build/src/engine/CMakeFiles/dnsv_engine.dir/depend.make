# Empty dependencies file for dnsv_engine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdnsv_engine.a"
)

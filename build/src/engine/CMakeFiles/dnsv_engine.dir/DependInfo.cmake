
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/dnsv_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/sources/compare_raw_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/compare_raw_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/compare_raw_mg.cc.o.d"
  "/root/repo/src/engine/sources/library_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/library_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/library_mg.cc.o.d"
  "/root/repo/src/engine/sources/name_spec_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/name_spec_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/name_spec_mg.cc.o.d"
  "/root/repo/src/engine/sources/registry.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/registry.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/registry.cc.o.d"
  "/root/repo/src/engine/sources/resolve_dev_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_dev_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_dev_mg.cc.o.d"
  "/root/repo/src/engine/sources/resolve_golden_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_golden_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_golden_mg.cc.o.d"
  "/root/repo/src/engine/sources/resolve_v1_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v1_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v1_mg.cc.o.d"
  "/root/repo/src/engine/sources/resolve_v2_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v2_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v2_mg.cc.o.d"
  "/root/repo/src/engine/sources/resolve_v3_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v3_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v3_mg.cc.o.d"
  "/root/repo/src/engine/sources/resolve_v4_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v4_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/resolve_v4_mg.cc.o.d"
  "/root/repo/src/engine/sources/spec_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/spec_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/spec_mg.cc.o.d"
  "/root/repo/src/engine/sources/types_mg.cc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/types_mg.cc.o" "gcc" "src/engine/CMakeFiles/dnsv_engine.dir/sources/types_mg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsv_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dnsv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

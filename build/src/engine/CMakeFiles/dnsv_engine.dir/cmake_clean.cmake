file(REMOVE_RECURSE
  "CMakeFiles/dnsv_engine.dir/engine.cc.o"
  "CMakeFiles/dnsv_engine.dir/engine.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/compare_raw_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/compare_raw_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/library_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/library_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/name_spec_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/name_spec_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/registry.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/registry.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_dev_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_dev_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_golden_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_golden_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v1_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v1_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v2_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v2_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v3_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v3_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v4_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/resolve_v4_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/spec_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/spec_mg.cc.o.d"
  "CMakeFiles/dnsv_engine.dir/sources/types_mg.cc.o"
  "CMakeFiles/dnsv_engine.dir/sources/types_mg.cc.o.d"
  "libdnsv_engine.a"
  "libdnsv_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dnsv_zonegen.
# This may be replaced when dependencies are built.

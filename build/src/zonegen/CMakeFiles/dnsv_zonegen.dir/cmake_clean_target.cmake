file(REMOVE_RECURSE
  "libdnsv_zonegen.a"
)

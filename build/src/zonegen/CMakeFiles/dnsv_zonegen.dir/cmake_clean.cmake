file(REMOVE_RECURSE
  "CMakeFiles/dnsv_zonegen.dir/zonegen.cc.o"
  "CMakeFiles/dnsv_zonegen.dir/zonegen.cc.o.d"
  "libdnsv_zonegen.a"
  "libdnsv_zonegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_zonegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

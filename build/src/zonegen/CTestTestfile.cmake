# CMake generated Testfile for 
# Source directory: /root/repo/src/zonegen
# Build directory: /root/repo/build/src/zonegen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "libdnsv_sym.a"
)

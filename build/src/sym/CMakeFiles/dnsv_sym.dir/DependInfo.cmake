
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/executor.cc" "src/sym/CMakeFiles/dnsv_sym.dir/executor.cc.o" "gcc" "src/sym/CMakeFiles/dnsv_sym.dir/executor.cc.o.d"
  "/root/repo/src/sym/refine.cc" "src/sym/CMakeFiles/dnsv_sym.dir/refine.cc.o" "gcc" "src/sym/CMakeFiles/dnsv_sym.dir/refine.cc.o.d"
  "/root/repo/src/sym/specsub.cc" "src/sym/CMakeFiles/dnsv_sym.dir/specsub.cc.o" "gcc" "src/sym/CMakeFiles/dnsv_sym.dir/specsub.cc.o.d"
  "/root/repo/src/sym/summary.cc" "src/sym/CMakeFiles/dnsv_sym.dir/summary.cc.o" "gcc" "src/sym/CMakeFiles/dnsv_sym.dir/summary.cc.o.d"
  "/root/repo/src/sym/symvalue.cc" "src/sym/CMakeFiles/dnsv_sym.dir/symvalue.cc.o" "gcc" "src/sym/CMakeFiles/dnsv_sym.dir/symvalue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dnsv_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for dnsv_sym.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dnsv_sym.dir/executor.cc.o"
  "CMakeFiles/dnsv_sym.dir/executor.cc.o.d"
  "CMakeFiles/dnsv_sym.dir/refine.cc.o"
  "CMakeFiles/dnsv_sym.dir/refine.cc.o.d"
  "CMakeFiles/dnsv_sym.dir/specsub.cc.o"
  "CMakeFiles/dnsv_sym.dir/specsub.cc.o.d"
  "CMakeFiles/dnsv_sym.dir/summary.cc.o"
  "CMakeFiles/dnsv_sym.dir/summary.cc.o.d"
  "CMakeFiles/dnsv_sym.dir/symvalue.cc.o"
  "CMakeFiles/dnsv_sym.dir/symvalue.cc.o.d"
  "libdnsv_sym.a"
  "libdnsv_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

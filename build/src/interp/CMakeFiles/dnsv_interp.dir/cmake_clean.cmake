file(REMOVE_RECURSE
  "CMakeFiles/dnsv_interp.dir/interp.cc.o"
  "CMakeFiles/dnsv_interp.dir/interp.cc.o.d"
  "CMakeFiles/dnsv_interp.dir/value.cc.o"
  "CMakeFiles/dnsv_interp.dir/value.cc.o.d"
  "libdnsv_interp.a"
  "libdnsv_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

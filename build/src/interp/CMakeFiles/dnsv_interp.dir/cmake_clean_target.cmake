file(REMOVE_RECURSE
  "libdnsv_interp.a"
)

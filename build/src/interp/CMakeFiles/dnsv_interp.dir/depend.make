# Empty dependencies file for dnsv_interp.
# This may be replaced when dependencies are built.

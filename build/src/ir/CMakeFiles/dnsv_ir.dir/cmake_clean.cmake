file(REMOVE_RECURSE
  "CMakeFiles/dnsv_ir.dir/builder.cc.o"
  "CMakeFiles/dnsv_ir.dir/builder.cc.o.d"
  "CMakeFiles/dnsv_ir.dir/printer.cc.o"
  "CMakeFiles/dnsv_ir.dir/printer.cc.o.d"
  "CMakeFiles/dnsv_ir.dir/type.cc.o"
  "CMakeFiles/dnsv_ir.dir/type.cc.o.d"
  "CMakeFiles/dnsv_ir.dir/validate.cc.o"
  "CMakeFiles/dnsv_ir.dir/validate.cc.o.d"
  "libdnsv_ir.a"
  "libdnsv_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdnsv_ir.a"
)

# Empty compiler generated dependencies file for dnsv_ir.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/example_zones.cc" "src/dns/CMakeFiles/dnsv_dns.dir/example_zones.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/example_zones.cc.o.d"
  "/root/repo/src/dns/heap.cc" "src/dns/CMakeFiles/dnsv_dns.dir/heap.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/heap.cc.o.d"
  "/root/repo/src/dns/name.cc" "src/dns/CMakeFiles/dnsv_dns.dir/name.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/name.cc.o.d"
  "/root/repo/src/dns/rr.cc" "src/dns/CMakeFiles/dnsv_dns.dir/rr.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/rr.cc.o.d"
  "/root/repo/src/dns/wire.cc" "src/dns/CMakeFiles/dnsv_dns.dir/wire.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/wire.cc.o.d"
  "/root/repo/src/dns/zone.cc" "src/dns/CMakeFiles/dnsv_dns.dir/zone.cc.o" "gcc" "src/dns/CMakeFiles/dnsv_dns.dir/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdnsv_dns.a"
)

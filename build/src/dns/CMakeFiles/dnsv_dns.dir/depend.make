# Empty dependencies file for dnsv_dns.
# This may be replaced when dependencies are built.

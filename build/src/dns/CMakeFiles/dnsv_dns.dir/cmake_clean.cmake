file(REMOVE_RECURSE
  "CMakeFiles/dnsv_dns.dir/example_zones.cc.o"
  "CMakeFiles/dnsv_dns.dir/example_zones.cc.o.d"
  "CMakeFiles/dnsv_dns.dir/heap.cc.o"
  "CMakeFiles/dnsv_dns.dir/heap.cc.o.d"
  "CMakeFiles/dnsv_dns.dir/name.cc.o"
  "CMakeFiles/dnsv_dns.dir/name.cc.o.d"
  "CMakeFiles/dnsv_dns.dir/rr.cc.o"
  "CMakeFiles/dnsv_dns.dir/rr.cc.o.d"
  "CMakeFiles/dnsv_dns.dir/wire.cc.o"
  "CMakeFiles/dnsv_dns.dir/wire.cc.o.d"
  "CMakeFiles/dnsv_dns.dir/zone.cc.o"
  "CMakeFiles/dnsv_dns.dir/zone.cc.o.d"
  "libdnsv_dns.a"
  "libdnsv_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

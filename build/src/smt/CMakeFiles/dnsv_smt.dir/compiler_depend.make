# Empty compiler generated dependencies file for dnsv_smt.
# This may be replaced when dependencies are built.

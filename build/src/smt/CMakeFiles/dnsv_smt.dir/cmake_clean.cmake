file(REMOVE_RECURSE
  "CMakeFiles/dnsv_smt.dir/solver.cc.o"
  "CMakeFiles/dnsv_smt.dir/solver.cc.o.d"
  "CMakeFiles/dnsv_smt.dir/term.cc.o"
  "CMakeFiles/dnsv_smt.dir/term.cc.o.d"
  "libdnsv_smt.a"
  "libdnsv_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

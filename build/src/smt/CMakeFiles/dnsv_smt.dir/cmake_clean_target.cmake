file(REMOVE_RECURSE
  "libdnsv_smt.a"
)

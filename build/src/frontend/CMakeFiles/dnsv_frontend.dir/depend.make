# Empty dependencies file for dnsv_frontend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdnsv_frontend.a"
)

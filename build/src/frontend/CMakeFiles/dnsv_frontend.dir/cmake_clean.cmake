file(REMOVE_RECURSE
  "CMakeFiles/dnsv_frontend.dir/frontend.cc.o"
  "CMakeFiles/dnsv_frontend.dir/frontend.cc.o.d"
  "CMakeFiles/dnsv_frontend.dir/lexer.cc.o"
  "CMakeFiles/dnsv_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/dnsv_frontend.dir/lower.cc.o"
  "CMakeFiles/dnsv_frontend.dir/lower.cc.o.d"
  "CMakeFiles/dnsv_frontend.dir/parser.cc.o"
  "CMakeFiles/dnsv_frontend.dir/parser.cc.o.d"
  "CMakeFiles/dnsv_frontend.dir/typecheck.cc.o"
  "CMakeFiles/dnsv_frontend.dir/typecheck.cc.o.d"
  "libdnsv_frontend.a"
  "libdnsv_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dnsv_dnsv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dnsv_dnsv.dir/layers.cc.o"
  "CMakeFiles/dnsv_dnsv.dir/layers.cc.o.d"
  "CMakeFiles/dnsv_dnsv.dir/verifier.cc.o"
  "CMakeFiles/dnsv_dnsv.dir/verifier.cc.o.d"
  "libdnsv_dnsv.a"
  "libdnsv_dnsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_dnsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdnsv_dnsv.a"
)

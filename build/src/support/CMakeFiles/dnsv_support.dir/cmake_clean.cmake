file(REMOVE_RECURSE
  "CMakeFiles/dnsv_support.dir/logging.cc.o"
  "CMakeFiles/dnsv_support.dir/logging.cc.o.d"
  "CMakeFiles/dnsv_support.dir/status.cc.o"
  "CMakeFiles/dnsv_support.dir/status.cc.o.d"
  "CMakeFiles/dnsv_support.dir/strings.cc.o"
  "CMakeFiles/dnsv_support.dir/strings.cc.o.d"
  "libdnsv_support.a"
  "libdnsv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

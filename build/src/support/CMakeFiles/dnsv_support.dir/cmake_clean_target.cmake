file(REMOVE_RECURSE
  "libdnsv_support.a"
)

# Empty compiler generated dependencies file for dnsv_support.
# This may be replaced when dependencies are built.

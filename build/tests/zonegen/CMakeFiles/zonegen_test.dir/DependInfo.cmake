
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/zonegen/zonegen_test.cc" "tests/zonegen/CMakeFiles/zonegen_test.dir/zonegen_test.cc.o" "gcc" "tests/zonegen/CMakeFiles/zonegen_test.dir/zonegen_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zonegen/CMakeFiles/dnsv_zonegen.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsv_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

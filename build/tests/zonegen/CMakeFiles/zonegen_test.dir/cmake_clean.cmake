file(REMOVE_RECURSE
  "CMakeFiles/zonegen_test.dir/zonegen_test.cc.o"
  "CMakeFiles/zonegen_test.dir/zonegen_test.cc.o.d"
  "zonegen_test"
  "zonegen_test.pdb"
  "zonegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

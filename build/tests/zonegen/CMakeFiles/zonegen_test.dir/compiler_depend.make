# Empty compiler generated dependencies file for zonegen_test.
# This may be replaced when dependencies are built.

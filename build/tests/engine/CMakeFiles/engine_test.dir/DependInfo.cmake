
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/behavior_test.cc" "tests/engine/CMakeFiles/engine_test.dir/behavior_test.cc.o" "gcc" "tests/engine/CMakeFiles/engine_test.dir/behavior_test.cc.o.d"
  "/root/repo/tests/engine/bugs_test.cc" "tests/engine/CMakeFiles/engine_test.dir/bugs_test.cc.o" "gcc" "tests/engine/CMakeFiles/engine_test.dir/bugs_test.cc.o.d"
  "/root/repo/tests/engine/differential_test.cc" "tests/engine/CMakeFiles/engine_test.dir/differential_test.cc.o" "gcc" "tests/engine/CMakeFiles/engine_test.dir/differential_test.cc.o.d"
  "/root/repo/tests/engine/spec_semantics_test.cc" "tests/engine/CMakeFiles/engine_test.dir/spec_semantics_test.cc.o" "gcc" "tests/engine/CMakeFiles/engine_test.dir/spec_semantics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dnsv_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/zonegen/CMakeFiles/dnsv_zonegen.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dnsv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsv_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

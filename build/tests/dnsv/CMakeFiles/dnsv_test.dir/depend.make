# Empty dependencies file for dnsv_test.
# This may be replaced when dependencies are built.

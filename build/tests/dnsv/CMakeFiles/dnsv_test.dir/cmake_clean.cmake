file(REMOVE_RECURSE
  "CMakeFiles/dnsv_test.dir/crosscheck_test.cc.o"
  "CMakeFiles/dnsv_test.dir/crosscheck_test.cc.o.d"
  "CMakeFiles/dnsv_test.dir/verifier_test.cc.o"
  "CMakeFiles/dnsv_test.dir/verifier_test.cc.o.d"
  "dnsv_test"
  "dnsv_test.pdb"
  "dnsv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

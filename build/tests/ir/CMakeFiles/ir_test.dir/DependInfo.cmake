
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/builder_test.cc" "tests/ir/CMakeFiles/ir_test.dir/builder_test.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/builder_test.cc.o.d"
  "/root/repo/tests/ir/printer_test.cc" "tests/ir/CMakeFiles/ir_test.dir/printer_test.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/printer_test.cc.o.d"
  "/root/repo/tests/ir/type_test.cc" "tests/ir/CMakeFiles/ir_test.dir/type_test.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/type_test.cc.o.d"
  "/root/repo/tests/ir/validate_test.cc" "tests/ir/CMakeFiles/ir_test.dir/validate_test.cc.o" "gcc" "tests/ir/CMakeFiles/ir_test.dir/validate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dnsv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

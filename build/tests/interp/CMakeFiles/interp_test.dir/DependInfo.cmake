
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp/edge_test.cc" "tests/interp/CMakeFiles/interp_test.dir/edge_test.cc.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/edge_test.cc.o.d"
  "/root/repo/tests/interp/interp_test.cc" "tests/interp/CMakeFiles/interp_test.dir/interp_test.cc.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/interp_test.cc.o.d"
  "/root/repo/tests/interp/value_test.cc" "tests/interp/CMakeFiles/interp_test.dir/value_test.cc.o" "gcc" "tests/interp/CMakeFiles/interp_test.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dnsv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

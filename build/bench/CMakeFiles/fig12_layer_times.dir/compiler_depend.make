# Empty compiler generated dependencies file for fig12_layer_times.
# This may be replaced when dependencies are built.

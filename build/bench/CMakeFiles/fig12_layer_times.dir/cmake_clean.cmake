file(REMOVE_RECURSE
  "CMakeFiles/fig12_layer_times.dir/fig12_layer_times.cc.o"
  "CMakeFiles/fig12_layer_times.dir/fig12_layer_times.cc.o.d"
  "fig12_layer_times"
  "fig12_layer_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_layer_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_treesearch_paths.dir/table1_treesearch_paths.cc.o"
  "CMakeFiles/table1_treesearch_paths.dir/table1_treesearch_paths.cc.o.d"
  "table1_treesearch_paths"
  "table1_treesearch_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_treesearch_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_treesearch_paths.
# This may be replaced when dependencies are built.

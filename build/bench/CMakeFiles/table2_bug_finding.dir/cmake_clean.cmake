file(REMOVE_RECURSE
  "CMakeFiles/table2_bug_finding.dir/table2_bug_finding.cc.o"
  "CMakeFiles/table2_bug_finding.dir/table2_bug_finding.cc.o.d"
  "table2_bug_finding"
  "table2_bug_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bug_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scalability_zone_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scalability_zone_size.dir/scalability_zone_size.cc.o"
  "CMakeFiles/scalability_zone_size.dir/scalability_zone_size.cc.o.d"
  "scalability_zone_size"
  "scalability_zone_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_zone_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

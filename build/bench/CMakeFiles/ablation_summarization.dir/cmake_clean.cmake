file(REMOVE_RECURSE
  "CMakeFiles/ablation_summarization.dir/ablation_summarization.cc.o"
  "CMakeFiles/ablation_summarization.dir/ablation_summarization.cc.o.d"
  "ablation_summarization"
  "ablation_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

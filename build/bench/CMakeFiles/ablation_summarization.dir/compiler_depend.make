# Empty compiler generated dependencies file for ablation_summarization.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_summarization.cc" "bench/CMakeFiles/ablation_summarization.dir/ablation_summarization.cc.o" "gcc" "bench/CMakeFiles/ablation_summarization.dir/ablation_summarization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnsv/CMakeFiles/dnsv_dnsv.dir/DependInfo.cmake"
  "/root/repo/build/src/zonegen/CMakeFiles/dnsv_zonegen.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dnsv_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dnsv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dnsv_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/dnsv_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsv_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/dnsv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dnsv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dnsv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

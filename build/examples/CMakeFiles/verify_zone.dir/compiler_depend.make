# Empty compiler generated dependencies file for verify_zone.
# This may be replaced when dependencies are built.

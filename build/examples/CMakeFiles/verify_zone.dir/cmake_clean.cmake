file(REMOVE_RECURSE
  "CMakeFiles/verify_zone.dir/verify_zone.cpp.o"
  "CMakeFiles/verify_zone.dir/verify_zone.cpp.o.d"
  "verify_zone"
  "verify_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

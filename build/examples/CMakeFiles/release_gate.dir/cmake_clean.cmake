file(REMOVE_RECURSE
  "CMakeFiles/release_gate.dir/release_gate.cpp.o"
  "CMakeFiles/release_gate.dir/release_gate.cpp.o.d"
  "release_gate"
  "release_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for release_gate.
# This may be replaced when dependencies are built.

# Empty dependencies file for resolve_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/resolve_cli.dir/resolve_cli.cpp.o"
  "CMakeFiles/resolve_cli.dir/resolve_cli.cpp.o.d"
  "resolve_cli"
  "resolve_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dns_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dns_server.dir/dns_server.cpp.o"
  "CMakeFiles/dns_server.dir/dns_server.cpp.o.d"
  "dns_server"
  "dns_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dns_server_selftest "/root/repo/build/examples/dns_server" "--selftest")
set_tests_properties(dns_server_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(quickstart_smoke "/root/repo/build/examples/quickstart")
set_tests_properties(quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")

// An authoritative DNS server over the verified engine — a thin CLI around
// src/server (docs/SERVER.md), which owns the sharded epoll workers, the
// TCP fallback for truncated answers, hot zone reload, and stats.
//
//   $ ./examples/dns_server zones/kitchen-sink.zone 5533 --workers 4 &
//   $ dig @127.0.0.1 -p 5533 www.example.com A
//   $ dig @127.0.0.1 -p 5533 +tcp www.example.com A   # TC=1 fallback path
//   $ kill -HUP  $!   # re-read the zone file, keep serving on failure
//   $ kill -USR1 $!   # dump aggregated stats as JSON to stderr
//
//   $ ./examples/dns_server --selftest   # loopback UDP+TCP round trip, exits 0/1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/server/server.h"
#include "src/support/strings.h"

namespace {

using namespace dnsv;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [zone-file] [port] [--workers N] [--no-tcp]\n"
               "          [--backend interp|compiled] [--cache-entries N]\n"
               "       %s --selftest\n"
               "port must be 1..65535 (default 5533); --workers defaults to 2;\n"
               "--backend defaults to compiled (docs/BACKEND.md);\n"
               "--cache-entries sizes the response packet cache, 0 disables\n"
               "(default 4096, docs/SERVER.md)\n",
               argv0, argv0);
  return 2;
}

Result<ZoneConfig> LoadZoneFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Result<ZoneConfig>::Error("cannot open zone file " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseZoneText(buffer.str());
}

int RunSelfTest();

}  // namespace

int main(int argc, char** argv) {
  std::string zone_path;
  std::string port_text;
  ServerConfig config;
  config.udp_workers = 2;
  config.port = 5533;
  // The CLI serves the AOT-compiled backend by default — that is the point
  // of the exercise; --backend interp gets the reference interpreter back.
  config.backend = BackendKind::kCompiled;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selftest") {
      return RunSelfTest();
    } else if (arg == "--no-tcp") {
      config.enable_tcp = false;
    } else if (arg == "--workers") {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      int64_t workers = 0;
      if (!ParseInt64(argv[++i], &workers) || workers < 1 || workers > 64) {
        std::fprintf(stderr, "--workers must be 1..64, got '%s'\n", argv[i]);
        return 2;
      }
      config.udp_workers = static_cast<int>(workers);
    } else if (arg == "--backend") {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      Result<BackendKind> backend = ParseBackendKind(argv[++i]);
      if (!backend.ok()) {
        std::fprintf(stderr, "%s\n", backend.error().c_str());
        return 2;
      }
      config.backend = backend.value();
    } else if (arg == "--cache-entries") {
      if (i + 1 >= argc) {
        return Usage(argv[0]);
      }
      int64_t entries = 0;
      if (!ParseInt64(argv[++i], &entries) || entries < 0 || entries > (int64_t{1} << 24)) {
        std::fprintf(stderr, "--cache-entries must be 0..%lld, got '%s'\n",
                     static_cast<long long>(int64_t{1} << 24), argv[i]);
        return 2;
      }
      config.cache_entries = static_cast<size_t>(entries);
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 2) {
    return Usage(argv[0]);
  }

  ZoneConfig zone = KitchenSinkZone();
  if (!positional.empty()) {
    zone_path = positional[0];
    Result<ZoneConfig> parsed = LoadZoneFile(zone_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "zone parse error: %s\n", parsed.error().c_str());
      return 2;
    }
    zone = std::move(parsed).value();
  }
  if (positional.size() > 1) {
    Result<uint16_t> port = ParsePort(positional[1]);
    if (!port.ok()) {
      std::fprintf(stderr, "%s\n", port.error().c_str());
      return 2;
    }
    config.port = port.value();
  }

  // Block the control signals before any thread exists, so they are only
  // ever consumed by sigwait below (and SIGHUP by the SignalReloader).
  sigset_t control;
  sigemptyset(&control);
  sigaddset(&control, SIGINT);
  sigaddset(&control, SIGTERM);
  sigaddset(&control, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &control, nullptr);

  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, zone);
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", started.error().c_str());
    return 2;
  }
  std::unique_ptr<DnsServer> server = std::move(started).value();
  std::unique_ptr<SignalReloader> reloader;
  if (!zone_path.empty()) {
    reloader = std::make_unique<SignalReloader>(server.get(), zone_path);
  }
  std::fprintf(stderr, "serving %s on %s:%u (UDP x%d%s, %s backend, cache %zu)%s\n",
               zone.origin.ToString().c_str(), config.bind_ip.c_str(), server->udp_port(),
               config.udp_workers, config.enable_tcp ? " + TCP" : "",
               BackendKindName(config.backend), config.cache_entries,
               zone_path.empty() ? "" : "; SIGHUP reloads the zone file");

  while (true) {
    int sig = 0;
    if (sigwait(&control, &sig) != 0) {
      continue;
    }
    if (sig == SIGUSR1) {
      std::fprintf(stderr, "%s\n", server->StatsJson().c_str());
      continue;
    }
    break;  // SIGINT/SIGTERM: graceful shutdown
  }
  reloader.reset();
  server->Stop();
  std::fprintf(stderr, "final stats: %s\n", server->StatsJson().c_str());
  return 0;
}

namespace {

// Runs the TC=1 + TCP-fallback round trip on one backend; on success stores
// the raw UDP and TCP reply bytes so RunSelfTest can assert the backends
// serve byte-identical wire responses. Returns 0/1 like main; -1 = skip
// (sandboxes without loopback sockets).
int SelfTestBackend(BackendKind backend, std::vector<uint8_t>* udp_reply,
                    std::vector<uint8_t>* tcp_reply) {
  ServerConfig config;
  config.port = 0;
  config.udp_workers = 2;
  config.backend = backend;
  // WideRrsetZone's www answer (40 A records) cannot fit the 512-byte UDP
  // clamp, so the selftest exercises TC=1 plus the TCP fallback.
  Result<std::unique_ptr<DnsServer>> started = DnsServer::Start(config, WideRrsetZone());
  if (!started.ok()) {
    std::fprintf(stderr, "selftest: cannot bind loopback sockets (%s); skipping\n",
                 started.error().c_str());
    return -1;  // sandboxes without loopback sockets still pass the build
  }
  std::unique_ptr<DnsServer> server = std::move(started).value();

  WireQuery query;
  query.id = 0x4242;
  query.qname = DnsName::Parse("www.example.com").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> request = EncodeWireQuery(query);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->udp_port());

  // UDP: the 40-record answer exceeds 512 bytes, so we must get TC=1.
  int udp = ::socket(AF_INET, SOCK_DGRAM, 0);
  ::sendto(udp, request.data(), request.size(), 0, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr));
  uint8_t buffer[65536];
  ssize_t n = ::recv(udp, buffer, sizeof(buffer), 0);
  ::close(udp);
  if (n <= 0) {
    std::fprintf(stderr, "selftest: no UDP reply\n");
    return 1;
  }
  *udp_reply = std::vector<uint8_t>(buffer, buffer + n);
  bool truncated = false;
  WireQuery echoed;
  Result<ResponseView> udp_view = ParseWireResponse(*udp_reply, &echoed, &truncated);
  if (!udp_view.ok() || echoed.id != 0x4242 || !truncated) {
    std::fprintf(stderr, "selftest: expected a TC=1 UDP answer\n");
    return 1;
  }

  // TCP fallback: the same query served in full.
  addr.sin_port = htons(server->tcp_port());
  int tcp = ::socket(AF_INET, SOCK_STREAM, 0);
  if (::connect(tcp, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "selftest: TCP connect failed\n");
    return 1;
  }
  std::vector<uint8_t> framed;
  if (!AppendTcpFrame(&framed, request).ok()) {
    return 1;
  }
  ::send(tcp, framed.data(), framed.size(), 0);
  TcpFrameDecoder decoder;
  std::vector<uint8_t> full;
  while (true) {
    n = ::recv(tcp, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      std::fprintf(stderr, "selftest: TCP stream ended early\n");
      ::close(tcp);
      return 1;
    }
    decoder.Feed(buffer, static_cast<size_t>(n));
    if (decoder.Next(&full)) {
      break;
    }
  }
  ::close(tcp);
  Result<ResponseView> tcp_view = ParseWireResponse(full, &echoed, &truncated);
  if (!tcp_view.ok() || truncated || tcp_view.value().answer.size() != 40 ||
      tcp_view.value().rcode != Rcode::kNoError) {
    std::fprintf(stderr, "selftest: TCP fallback did not serve the full answer\n");
    return 1;
  }
  *tcp_reply = std::move(full);
  server->Stop();
  std::printf("selftest OK (%s backend): TC=1 over UDP, full 40-record answer over TCP\n",
              BackendKindName(backend));
  return 0;
}

// Both backends must pass the round trip AND serve byte-identical wire
// responses — the CLI-level version of tests/server/backend_equiv_test.cc.
int RunSelfTest() {
  std::vector<uint8_t> interp_udp, interp_tcp, compiled_udp, compiled_tcp;
  int interp_rc = SelfTestBackend(BackendKind::kInterp, &interp_udp, &interp_tcp);
  if (interp_rc != 0) {
    return interp_rc < 0 ? 0 : interp_rc;
  }
  int compiled_rc = SelfTestBackend(BackendKind::kCompiled, &compiled_udp, &compiled_tcp);
  if (compiled_rc != 0) {
    return compiled_rc < 0 ? 0 : compiled_rc;
  }
  if (interp_udp != compiled_udp || interp_tcp != compiled_tcp) {
    std::fprintf(stderr, "selftest: interp and compiled backends served different bytes\n");
    return 1;
  }
  std::printf("selftest OK: interp and compiled backends byte-identical\n");
  return 0;
}

}  // namespace

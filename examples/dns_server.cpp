// A real UDP authoritative DNS server: wire-format packets in, verified
// engine behind, wire-format responses out.
//
//   $ ./examples/dns_server zones/kitchen-sink.zone 5533 &
//   $ dig @127.0.0.1 -p 5533 www.example.com A
//
//   $ ./examples/dns_server --selftest        # loopback round-trip, exits 0/1
//
// The data plane serving these packets is the exact AbsIR program DNS-V
// verified; the wire codec around it is the component the paper leaves to
// conventional testing (tests/dns/wire_test.cc).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/dns/example_zones.h"
#include "src/dns/wire.h"
#include "src/engine/engine.h"

namespace {

using namespace dnsv;

int OpenUdpSocket(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("bind");
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<uint8_t> Serve(AuthoritativeServer* server, const std::vector<uint8_t>& packet) {
  Result<WireQuery> query = ParseWireQuery(packet);
  if (!query.ok()) {
    // FORMERR with an empty body when we cannot even parse the question.
    std::vector<uint8_t> err = {0, 0, 0x80, 0x01, 0, 0, 0, 0, 0, 0, 0, 0};
    if (packet.size() >= 2) {
      err[0] = packet[0];
      err[1] = packet[1];
    }
    return err;
  }
  QueryResult result = server->Query(query.value().qname, query.value().qtype);
  ResponseView view;
  if (result.panicked) {
    view.rcode = Rcode::kServFail;  // the engine crashed (a dev-version treat)
  } else {
    view = result.response;
  }
  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query.value(), view);
  if (!encoded.ok()) {
    // A response we cannot put on the wire (un-encodable name): SERVFAIL.
    std::fprintf(stderr, "encode error: %s\n", encoded.error().c_str());
    return EncodeWireResponse(query.value(), ResponseView{.rcode = Rcode::kServFail}).value();
  }
  return std::move(encoded).value();
}

int RunSelfTest() {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  int server_fd = OpenUdpSocket(0);
  if (server_fd < 0) {
    std::fprintf(stderr, "selftest: cannot bind a loopback UDP socket; skipping\n");
    return 0;  // sandboxes without loopback sockets still pass the build
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(server_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);

  int client_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  WireQuery query;
  query.id = 0x4242;
  query.qname = DnsName::Parse("chain.example.com").value();
  query.qtype = RrType::kA;
  std::vector<uint8_t> request = EncodeWireQuery(query);
  ::sendto(client_fd, request.data(), request.size(), 0,
           reinterpret_cast<sockaddr*>(&bound), bound_len);

  // Server side: one packet.
  uint8_t buffer[1500];
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  ssize_t n = ::recvfrom(server_fd, buffer, sizeof(buffer), 0,
                         reinterpret_cast<sockaddr*>(&peer), &peer_len);
  if (n <= 0) {
    std::fprintf(stderr, "selftest: recvfrom failed\n");
    return 1;
  }
  std::vector<uint8_t> reply =
      Serve(server.get(), std::vector<uint8_t>(buffer, buffer + n));
  ::sendto(server_fd, reply.data(), reply.size(), 0, reinterpret_cast<sockaddr*>(&peer),
           peer_len);

  // Client side: check the answer.
  n = ::recvfrom(client_fd, buffer, sizeof(buffer), 0, nullptr, nullptr);
  ::close(client_fd);
  ::close(server_fd);
  if (n <= 0) {
    std::fprintf(stderr, "selftest: no reply\n");
    return 1;
  }
  WireQuery echoed;
  Result<ResponseView> parsed =
      ParseWireResponse(std::vector<uint8_t>(buffer, buffer + n), &echoed);
  if (!parsed.ok() || echoed.id != 0x4242) {
    std::fprintf(stderr, "selftest: bad reply: %s\n", parsed.ok() ? "id" : parsed.error().c_str());
    return 1;
  }
  // chain -> alias -> www (2 CNAMEs + 2 A records).
  if (parsed.value().answer.size() != 4 || parsed.value().rcode != Rcode::kNoError) {
    std::fprintf(stderr, "selftest: unexpected answer\n%s", parsed.value().ToString().c_str());
    return 1;
  }
  std::printf("selftest OK: 4-record CNAME chain served over UDP loopback\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--selftest") == 0) {
    return RunSelfTest();
  }
  ZoneConfig zone = KitchenSinkZone();
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open zone file %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Result<ZoneConfig> parsed = ParseZoneText(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "zone parse error: %s\n", parsed.error().c_str());
      return 2;
    }
    zone = std::move(parsed).value();
  }
  uint16_t port = argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 5533;

  auto server_result = AuthoritativeServer::Create(EngineVersion::kGolden, zone);
  if (!server_result.ok()) {
    std::fprintf(stderr, "zone rejected: %s\n", server_result.error().c_str());
    return 2;
  }
  auto server = std::move(server_result).value();
  int fd = OpenUdpSocket(port);
  if (fd < 0) {
    return 2;
  }
  std::fprintf(stderr, "serving %s on 127.0.0.1:%u (UDP)\n", zone.origin.ToString().c_str(),
               port);
  while (true) {
    uint8_t buffer[1500];
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    ssize_t n = ::recvfrom(fd, buffer, sizeof(buffer), 0, reinterpret_cast<sockaddr*>(&peer),
                           &peer_len);
    if (n <= 0) {
      continue;
    }
    std::vector<uint8_t> reply =
        Serve(server.get(), std::vector<uint8_t>(buffer, buffer + n));
    ::sendto(fd, reply.data(), reply.size(), 0, reinterpret_cast<sockaddr*>(&peer), peer_len);
  }
}

// Batch resolver: an authoritative "server" you can drive from the command
// line. Loads a zone file and answers queries read from stdin, one
// `<qname> <qtype>` pair per line — the closest thing to the production data
// plane this repo's engine can be without a network stack.
//
//   $ echo "www.example.com A" | ./examples/resolve_cli zone.txt
//   $ ./examples/resolve_cli                 # built-in kitchen-sink zone
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/support/strings.h"

int main(int argc, char** argv) {
  using namespace dnsv;

  ZoneConfig zone;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open zone file %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Result<ZoneConfig> parsed = ParseZoneText(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "zone parse error: %s\n", parsed.error().c_str());
      return 2;
    }
    zone = std::move(parsed).value();
  } else {
    zone = KitchenSinkZone();
  }

  auto server_result = AuthoritativeServer::Create(EngineVersion::kGolden, zone);
  if (!server_result.ok()) {
    std::fprintf(stderr, "zone rejected: %s\n", server_result.error().c_str());
    return 2;
  }
  auto server = std::move(server_result).value();
  std::fprintf(stderr, "serving %s (%zu records); enter '<qname> <qtype>' lines\n",
               zone.origin.ToString().c_str(), zone.records.size());

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream fields(line);
    std::string qname_text, qtype_text;
    fields >> qname_text >> qtype_text;
    if (qname_text.empty()) {
      continue;
    }
    Result<DnsName> qname = DnsName::Parse(qname_text);
    RrType qtype = RrType::kA;
    if (!qname.ok() || (!qtype_text.empty() && !ParseRrType(qtype_text, &qtype))) {
      std::printf(";; bad query: %s\n", line.c_str());
      continue;
    }
    QueryResult result = server->Query(qname.value(), qtype);
    std::printf(";; %s %s\n", qname_text.c_str(), RrTypeName(qtype));
    if (result.panicked) {
      std::printf("!! engine panic: %s\n", result.panic_message.c_str());
    } else {
      std::printf("%s\n", result.response.ToString().c_str());
    }
  }
  return 0;
}

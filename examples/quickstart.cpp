// Quickstart: load a zone into the verified DNS authoritative engine and
// serve a few queries.
//
//   $ ./examples/quickstart
//
// The engine executing here is the same AbsIR program DNS-V verifies: the
// MiniGo sources compile to AbsIR once, and the concrete interpreter serves
// queries from the in-heap domain tree the control plane builds (§6.5).
#include <cstdio>

#include "src/dns/example_zones.h"
#include "src/engine/engine.h"

int main() {
  using namespace dnsv;

  // 1. A zone configuration — parse from text or build programmatically.
  ZoneConfig zone = QuickstartZone();
  std::printf("Loading zone:\n%s\n", zone.ToText().c_str());

  // 2. Create an authoritative server running the fully verified ("golden")
  //    engine version.
  auto server_result = AuthoritativeServer::Create(EngineVersion::kGolden, zone);
  if (!server_result.ok()) {
    std::fprintf(stderr, "failed to load zone: %s\n", server_result.error().c_str());
    return 1;
  }
  auto server = std::move(server_result).value();

  // 3. Serve queries.
  struct Probe {
    const char* qname;
    RrType qtype;
  };
  const Probe probes[] = {
      {"www.example.org", RrType::kA},      // exact match
      {"api.example.org", RrType::kA},      // exact match
      {"www.example.org", RrType::kTxt},    // NODATA
      {"nope.example.org", RrType::kA},     // NXDOMAIN
      {"example.org", RrType::kNs},         // apex NS with glue
      {"www.elsewhere.test", RrType::kA},   // REFUSED (out of zone)
  };
  for (const Probe& probe : probes) {
    DnsName qname = DnsName::Parse(probe.qname).value();
    QueryResult result = server->Query(qname, probe.qtype);
    std::printf(";; query: %s %s\n", probe.qname, RrTypeName(probe.qtype));
    if (result.panicked) {
      std::printf("!! engine panic: %s\n\n", result.panic_message.c_str());
      continue;
    }
    std::printf("%s\n", result.response.ToString().c_str());
  }

  // 4. The executable specification doubles as an oracle: any query can be
  //    cross-checked against rrlookup (paper Fig. 9).
  DnsName qname = DnsName::Parse("api.example.org").value();
  QueryResult impl = server->Query(qname, RrType::kA);
  QueryResult spec = server->QuerySpec(qname, RrType::kA);
  std::printf(";; engine and specification agree: %s\n",
              impl.response == spec.response ? "yes" : "NO (bug!)");
  return 0;
}

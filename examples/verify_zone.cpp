// Verify a DNS zone deployment before it ships: runs the full DNS-V workflow
// (paper Fig. 6) for a chosen engine version over a zone file.
//
//   $ ./examples/verify_zone [version] [zone-file]
//
// version: v1.0 | v2.0 | v3.0 | dev | golden   (default: golden)
// zone-file: path to a zone in this repo's zone text format
//            (default: a built-in zone with wildcard + delegation)
//
// Exit code 0 = verified, 1 = issues found, 2 = usage/abort.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/dnsv/verifier.h"

namespace {

const char* const kDefaultZone = R"(
$ORIGIN shipit.test.
@      SOA   ns1 42
@      NS    ns1.shipit.test.
ns1    A     192.0.2.1
www    A     192.0.2.80
*      TXT   7
sub    NS    ns1.sub.shipit.test.
ns1.sub A    192.0.2.91
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dnsv;

  EngineVersion version = EngineVersion::kGolden;
  if (argc > 1) {
    bool found = false;
    for (EngineVersion candidate : AllEngineVersions()) {
      if (std::strcmp(argv[1], EngineVersionName(candidate)) == 0) {
        version = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown version '%s' (use v1.0|v2.0|v3.0|dev|golden)\n", argv[1]);
      return 2;
    }
  }
  std::string zone_text = kDefaultZone;
  if (argc > 2) {
    std::ifstream file(argv[2]);
    if (!file) {
      std::fprintf(stderr, "cannot open zone file %s\n", argv[2]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    zone_text = buffer.str();
  }
  Result<ZoneConfig> zone = ParseZoneText(zone_text);
  if (!zone.ok()) {
    std::fprintf(stderr, "zone parse error: %s\n", zone.error().c_str());
    return 2;
  }

  std::printf("DNS-V: verifying engine %s over zone %s ...\n", EngineVersionName(version),
              zone.value().origin.ToString().c_str());
  VerifyOptions options;
  options.use_summaries = true;  // the paper's workflow: summarize, then check
  VerificationReport report = VerifyEngine(version, zone.value(), options);
  std::printf("%s", report.ToString().c_str());
  if (report.aborted) {
    return 2;
  }
  return report.verified ? 0 : 1;
}

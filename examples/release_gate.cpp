// Release gate: the paper's development workflow in miniature (§7). Every
// engine iteration is verified against the top-level specification over a
// corpus of randomly generated zones (§6.5) before it may "reach production".
// Buggy iterations are rejected with confirmed counterexamples; the repaired
// engine passes.
//
//   $ ./examples/release_gate [num-zones]
#include <cstdio>
#include <cstdlib>

#include "src/dnsv/pipeline.h"
#include "src/zonegen/zonegen.h"

int main(int argc, char** argv) {
  using namespace dnsv;
  SetLogLevel(LogLevel::kWarning);  // keep summary chatter out of the gate log

  int num_zones = argc > 1 ? std::atoi(argv[1]) : 3;
  ZoneGenOptions gen_options;
  gen_options.max_names = 4;  // compact zones: exhaustive symbolic execution
  gen_options.max_depth = 2;

  std::printf("release gate: verifying each engine iteration over %d generated zones\n\n",
              num_zones);
  bool all_expected = true;
  VerifyContext context;  // N versions x M zones -> N compiles, M lifts per version
  for (EngineVersion version : AllEngineVersions()) {
    int clean = 0;
    VerificationIssue first_issue;
    bool found_issue = false;
    for (int i = 0; i < num_zones; ++i) {
      ZoneConfig zone = GenerateZone(static_cast<uint64_t>(1000 + i), gen_options);
      VerifyOptions options;
      options.max_issues = 1;
      VerificationReport report = RunVerifyPipeline(&context, version, zone, options);
      if (report.aborted) {
        std::printf("  %-7s zone #%d: aborted (%s)\n", EngineVersionName(version), i,
                    report.abort_reason.c_str());
        continue;
      }
      if (report.verified) {
        ++clean;
      } else if (!found_issue) {
        found_issue = true;
        first_issue = report.issues[0];
      }
    }
    if (found_issue) {
      std::printf("%-7s REJECTED (%d/%d zones verified). First counterexample:\n",
                  EngineVersionName(version), clean, num_zones);
      std::printf("%s", first_issue.ToString().c_str());
    } else {
      std::printf("%-7s SHIPPED (%d/%d zones verified)\n", EngineVersionName(version), clean,
                  num_zones);
    }
    bool expect_clean = version == EngineVersion::kGolden;
    // Random small zones may not expose every historical bug; only golden is
    // REQUIRED to be clean, buggy versions are EXPECTED to be caught.
    if (expect_clean && found_issue) {
      all_expected = false;
    }
  }
  std::printf("\ngate result: %s\n", all_expected ? "golden engine ships" : "UNEXPECTED");
  return all_expected ? 0 : 1;
}
